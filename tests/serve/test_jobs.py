"""Job state machine, content keys, event feed, registry journal."""

import pytest

from repro.opt.journal import load_journal
from repro.serve.jobs import (
    MAX_EVENTS,
    Job,
    JobError,
    JobRegistry,
    JobState,
    JobStateError,
    UnknownJobError,
    job_content_key,
)


@pytest.fixture
def registry(tmp_path):
    return JobRegistry(tmp_path / "jobs.jsonl")


PARAMS = {"circuits": ["gcd"], "budgets": [6, 7]}


class TestContentKey:
    def test_deterministic(self):
        assert job_content_key("explore", PARAMS) == \
            job_content_key("explore", dict(PARAMS))

    def test_order_insensitive(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert job_content_key("explore", a) == job_content_key("explore", b)

    def test_kind_and_params_matter(self):
        assert job_content_key("explore", PARAMS) != \
            job_content_key("optimize", PARAMS)
        assert job_content_key("explore", PARAMS) != \
            job_content_key("explore", {**PARAMS, "budgets": [6]})


class TestStateMachine:
    def test_happy_path(self, registry):
        job, created = registry.submit("explore", PARAMS)
        assert created and job.state is JobState.QUEUED
        registry.transition(job, JobState.RUNNING)
        registry.transition(job, JobState.DONE, result={"points": 4})
        assert job.state.terminal
        assert job.result == {"points": 4}

    @pytest.mark.parametrize("terminal", [JobState.DONE, JobState.FAILED,
                                          JobState.CANCELLED])
    def test_terminal_states_are_final(self, registry, terminal):
        job, _ = registry.submit("explore", PARAMS)
        registry.transition(job, JobState.RUNNING)
        registry.transition(job, terminal)
        for to in JobState:
            with pytest.raises(JobStateError):
                registry.transition(job, to)

    def test_queued_cannot_jump_to_done(self, registry):
        job, _ = registry.submit("explore", PARAMS)
        with pytest.raises(JobStateError):
            registry.transition(job, JobState.DONE)

    def test_failed_records_the_error(self, registry):
        job, _ = registry.submit("explore", PARAMS)
        registry.transition(job, JobState.RUNNING)
        registry.transition(job, JobState.FAILED, error="boom")
        assert job.error == "boom"
        assert job.snapshot()["error"] == "boom"

    def test_unknown_kind_rejected(self, registry):
        with pytest.raises(JobError, match="unknown job kind"):
            registry.submit("frobnicate", PARAMS)

    def test_unknown_job_id(self, registry):
        with pytest.raises(UnknownJobError):
            registry.get("j-999-deadbeef")


class TestDedup:
    def test_identical_inflight_submissions_share_one_job(self, registry):
        first, created = registry.submit("explore", PARAMS)
        second, again = registry.submit("explore", dict(PARAMS))
        assert created and not again
        assert first is second

    def test_terminal_job_does_not_absorb_resubmission(self, registry):
        first, _ = registry.submit("explore", PARAMS)
        registry.transition(first, JobState.RUNNING)
        registry.transition(first, JobState.DONE)
        second, created = registry.submit("explore", PARAMS)
        assert created and second is not first
        assert second.key == first.key  # same journal -> warm rerun


class TestCancel:
    def test_queued_cancel_is_immediate(self, registry):
        job, _ = registry.submit("explore", PARAMS)
        assert registry.request_cancel(job) is True
        assert job.state is JobState.CANCELLED

    def test_running_cancel_is_cooperative(self, registry):
        job, _ = registry.submit("explore", PARAMS)
        registry.transition(job, JobState.RUNNING)
        assert registry.request_cancel(job) is False
        assert job.cancel_requested
        assert job.state is JobState.RUNNING

    def test_terminal_cancel_is_a_noop(self, registry):
        job, _ = registry.submit("explore", PARAMS)
        registry.transition(job, JobState.RUNNING)
        registry.transition(job, JobState.DONE)
        assert registry.request_cancel(job) is False
        assert not job.cancel_requested


class TestEventFeed:
    def test_seq_is_monotonic_and_filterable(self, registry):
        job, _ = registry.submit("explore", PARAMS)
        for k in range(5):
            registry.push(job, {"type": "point", "k": k})
        snapshot = job.snapshot(since=3)
        assert [e["seq"] for e in snapshot["events"]] == [4, 5]
        assert job.snapshot()["last_seq"] == 5
        assert "events" not in job.snapshot()  # no since -> no feed

    def test_feed_is_bounded(self, registry):
        job, _ = registry.submit("explore", PARAMS)
        for k in range(MAX_EVENTS + 10):
            registry.push(job, {"type": "point", "k": k})
        assert len(job.events) == MAX_EVENTS
        assert job.events_dropped == 10
        assert job.last_seq == MAX_EVENTS + 10  # seq never rewinds


class TestRegistryJournal:
    def test_restart_restores_jobs_and_ids(self, tmp_path):
        first = JobRegistry(tmp_path / "jobs.jsonl")
        done, _ = first.submit("explore", PARAMS)
        first.transition(done, JobState.RUNNING)
        first.transition(done, JobState.DONE, result={"points": 2})
        interrupted, _ = first.submit("optimize",
                                      {"circuit": "gcd", "budgets": [6]})
        first.transition(interrupted, JobState.RUNNING)
        first.close()  # process dies here

        second = JobRegistry(tmp_path / "jobs.jsonl")
        restored = {job.id: job for job in second.jobs()}
        assert restored[done.id].state is JobState.DONE
        assert restored[done.id].result == {"points": 2}
        assert restored[interrupted.id].state is JobState.RUNNING

        revived = second.recoverable()
        assert [job.id for job in revived] == [interrupted.id]
        assert revived[0].state is JobState.QUEUED

        # New ids never collide with restored ones.
        fresh, _ = second.submit("explore", {"circuits": ["vender"],
                                             "budgets": [6]})
        assert fresh.id not in restored

    def test_compact_then_append_survives_restart(self, tmp_path):
        registry = JobRegistry(tmp_path / "jobs.jsonl")
        job, _ = registry.submit("explore", PARAMS)
        registry.transition(job, JobState.RUNNING)
        outcome = registry.compact()  # handle cycled around the replace
        assert outcome.kept == 1
        registry.transition(job, JobState.DONE)  # append post-compaction
        registry.close()
        reloaded = JobRegistry(tmp_path / "jobs.jsonl")
        assert reloaded.get(job.id).state is JobState.DONE

    def test_memory_only_registry_works(self):
        registry = JobRegistry()  # no journal path
        job, _ = registry.submit("explore", PARAMS)
        registry.transition(job, JobState.RUNNING)
        assert registry.compact() is None

    def test_garbage_record_is_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"format": 1, "kind": "serve-jobs"}\n'
                        '{"key": "j-x", "not-a-job": true}\n')
        registry = JobRegistry(path)
        assert registry.jobs() == []

    def test_journal_is_the_shared_format(self, tmp_path):
        registry = JobRegistry(tmp_path / "jobs.jsonl")
        job, _ = registry.submit("explore", PARAMS)
        registry.close()
        records = load_journal(tmp_path / "jobs.jsonl")
        assert records[job.id]["state"] == "queued"
        assert records[job.id]["jkey"] == job.key
