"""The multi-server serving tier: lease queue, SSE streams, HTTP caps.

LeaseStore tests drive lease expiry with injected clocks (no sleeps);
the recovery tests run two real servers over one ``state_dir`` and
kill one mid-job; the HTTP tests talk raw sockets to exercise the
keep-alive loop and the slowloris/size guards.
"""

import json
import socket
import threading
import time

import pytest

from repro.opt.journal import open_journal
from repro.serve import (
    EventGapError,
    JobState,
    LeaseStore,
    ServeClient,
    ServeError,
    start_in_thread,
)

EXPLORE = {"circuits": ["gcd"], "budgets": [6, 7]}
PARAMS = {"circuits": ["gcd"], "budgets": [6]}


@pytest.fixture()
def queue(tmp_path):
    store = LeaseStore(tmp_path / "queue.sqlite", lease_s=10.0)
    yield store
    store.close()


class TestLeaseStore:
    def test_submit_dedups_active_jobs_only(self, queue):
        row, created = queue.submit("explore", PARAMS)
        assert created and row.state == "queued"
        again, created = queue.submit("explore", PARAMS)
        assert not created and again.id == row.id
        queue.claim("a", now=100.0)
        running, created = queue.submit("explore", PARAMS)
        assert not created and running.id == row.id
        assert queue.finish(row.id, "a", JobState.DONE, result={"n": 1})
        fresh, created = queue.submit("explore", PARAMS)
        assert created and fresh.id != row.id
        assert fresh.key == row.key  # same content, same journal

    def test_claim_is_oldest_first_and_lease_stamped(self, queue):
        first, _ = queue.submit("explore", PARAMS)
        second, _ = queue.submit("explore", {"circuits": ["gcd"],
                                             "budgets": [7]})
        claimed = queue.claim("a", now=100.0)
        assert claimed.id == first.id
        assert claimed.server_id == "a"
        assert claimed.lease_deadline == pytest.approx(110.0)
        assert claimed.claims == 1
        assert queue.claim("a", now=100.0).id == second.id
        assert queue.claim("a", now=100.0) is None  # queue drained

    def test_expired_lease_is_reclaimed_but_never_self_stolen(self, queue):
        row, _ = queue.submit("explore", PARAMS)
        queue.claim("a", now=100.0)
        assert queue.claim("b", now=105.0) is None   # lease still live
        assert queue.claim("a", now=200.0) is None   # own lease: no steal
        stolen = queue.claim("b", now=200.0)
        assert stolen.id == row.id
        assert stolen.server_id == "b"
        assert stolen.claims == 2
        assert stolen.completed == 0  # counters reset for the re-run

    def test_heartbeat_extends_leases_and_reports_ownership(self, queue):
        row, _ = queue.submit("explore", PARAMS)
        queue.claim("a", now=100.0)                  # deadline 110
        assert queue.heartbeat("a", [row.id], now=108.0) == [row.id]
        assert queue.claim("b", now=115.0) is None   # extended to 118
        assert queue.heartbeat("b", [row.id], now=116.0) == []
        assert queue.claim("b", now=119.0).id == row.id
        assert queue.heartbeat("a", [row.id], now=119.5) == []  # lost

    def test_heartbeat_extends_only_the_listed_jobs(self, queue):
        # A server restarted under the same --server-id must not keep
        # its dead predecessor's leases fresh: only the jobs the
        # caller actually runs are extended, so the zombie row expires
        # on schedule and any peer can re-claim it.
        mine, _ = queue.submit("explore", PARAMS)
        zombie, _ = queue.submit("explore", {"circuits": ["gcd"],
                                             "budgets": [7]})
        queue.claim("a", now=100.0)
        queue.claim("a", now=100.0)                  # both leased by "a"
        assert queue.heartbeat("a", [mine.id], now=109.0) == [mine.id]
        stolen = queue.claim("b", now=112.0)
        assert stolen.id == zombie.id                # expired on time
        assert queue.claim("b", now=112.0) is None   # mine was extended

    def test_heartbeat_mirrors_the_feed_high_water(self, queue):
        row, _ = queue.submit("explore", PARAMS)
        queue.claim("a", now=100.0)
        assert queue.heartbeat("a", {row.id: 17}, now=101.0) == [row.id]
        assert queue.get(row.id).last_seq == 17

    def test_reclaim_rebases_the_event_sequence(self, queue):
        from repro.serve.jobs import SEQ_REBASE_MARGIN

        row, _ = queue.submit("explore", PARAMS)
        first = queue.claim("a", now=100.0)
        assert first.last_seq == 0                   # fresh claim: seqs 1..
        assert queue.progress(row.id, "a", completed=3, last_seq=41)
        stolen = queue.claim("b", now=200.0)
        # The new owner's feed starts strictly past anything a client
        # of "a" can have seen, so an old Last-Event-ID/since cursor
        # resumes with an explicit gap + replay — never a silent skip
        # of events whose seqs restarted below the cursor.
        assert stolen.last_seq == 41 + SEQ_REBASE_MARGIN

    def test_finish_and_progress_are_ownership_guarded(self, queue):
        row, _ = queue.submit("explore", PARAMS)
        queue.claim("a", now=100.0)
        assert queue.progress(row.id, "a", completed=3, total=9)
        assert not queue.progress(row.id, "b", completed=99)
        queue.claim("b", now=200.0)                  # a's lease expired
        assert not queue.finish(row.id, "a", JobState.DONE,
                                result={"n": 1})
        assert queue.get(row.id).state == "running"  # a could not clobber
        assert queue.finish(row.id, "b", JobState.DONE, result={"n": 1},
                            completed=9)
        final = queue.get(row.id)
        assert final.state == "done" and final.result == {"n": 1}
        assert final.completed == 9

    def test_release_requeues_without_waiting_out_the_lease(self, queue):
        row, _ = queue.submit("explore", PARAMS)
        queue.claim("a", now=100.0)
        assert queue.release("a") == 1
        requeued = queue.get(row.id)
        assert requeued.state == "queued" and requeued.server_id is None
        assert queue.claim("b", now=100.0).id == row.id  # no expiry wait

    def test_cancel_paths(self, queue):
        row, _ = queue.submit("explore", PARAMS)
        assert queue.request_cancel(row.id) == "immediate"
        assert queue.get(row.id).state == "cancelled"
        other, _ = queue.submit("explore", {"circuits": ["gcd"],
                                            "budgets": [8]})
        queue.claim("a", now=100.0)
        assert queue.request_cancel(other.id) == "cooperative"
        assert queue.get(other.id).cancel_requested
        queue.finish(other.id, "a", JobState.CANCELLED)
        assert queue.request_cancel(other.id) == "noop"
        assert queue.request_cancel("j-404-missing") is None

    def test_counts_and_active_keys(self, queue):
        row, _ = queue.submit("explore", PARAMS)
        other, _ = queue.submit("explore", {"circuits": ["gcd"],
                                            "budgets": [8]})
        queue.claim("a", now=100.0)
        assert queue.counts() == {"queued": 1, "running": 1}
        assert queue.active_keys() == {row.key, other.key}
        queue.finish(row.id, "a", JobState.DONE)
        assert queue.active_keys() == {other.key}


class TestMultiServerRecovery:
    def test_two_servers_drain_one_queue(self, tmp_path):
        state = tmp_path / "state"
        a = start_in_thread(state, workers=1, lease_s=5.0)
        b = start_in_thread(state, workers=1, lease_s=5.0)
        try:
            client = ServeClient(port=a.port)
            jobs = [client.submit("explore", circuits=["gcd"],
                                  budgets=[budget])["id"]
                    for budget in (5, 6, 7, 8)]
            peer = ServeClient(port=b.port)
            finals = [peer.wait(job_id, timeout=180) for job_id in jobs]
            assert all(f["state"] == "done" for f in finals)
            assert all(f["result"]["points"] == 1 for f in finals)
            # Both servers see the same cluster-wide queue.
            assert {j["id"] for j in client.jobs()} == set(jobs)
            assert {j["id"] for j in peer.jobs()} == set(jobs)
        finally:
            a.stop()
            b.stop()

    def test_kill_one_server_survivor_recovers_without_recompute(
            self, tmp_path):
        state = tmp_path / "state"
        a = start_in_thread(state, workers=2, lease_s=2.0)
        b = start_in_thread(state, workers=2, lease_s=2.0)
        try:
            client = ServeClient(port=a.port)
            params = {"circuits": ["gcd", "dealer", "vender"],
                      "budgets": [5, 6, 7]}
            job = client.submit("explore", **params)
            row = None
            for _ in range(200):  # wait for a server to claim the job
                row = a.server.queue.get(job["id"])
                if row.server_id is not None:
                    break
                time.sleep(0.05)
            assert row is not None and row.server_id is not None
            victim, survivor = ((a, b)
                                if row.server_id == a.server.server_id
                                else (b, a))
            # Let at least one fresh point land, then kill the owner.
            owner = ServeClient(port=victim.port)
            for event in owner.stream(job["id"], timeout=120):
                if event["type"] == "point" and not event.get("resumed"):
                    break
            victim.kill()

            journal = state / "journals" / f"{job['key']}.jsonl"
            with open(journal, encoding="utf-8") as handle:
                banked = sum(1 for _ in handle) - 1  # minus meta line
            assert banked >= 1

            peer = ServeClient(port=survivor.port)
            final = peer.wait(job["id"], timeout=180)
            assert final["state"] == "done"
            assert final["result"]["points"] == 9
            assert final["server_id"] == survivor.server.server_id
            assert final["claims"] >= 2                # lease re-claimed
            assert final["resumed"] == banked          # replayed, not redone
            # Zero recompute: every point was journaled exactly once.
            with open(journal, encoding="utf-8") as handle:
                assert sum(1 for _ in handle) - 1 == 9
        finally:
            a.stop()
            b.stop()

    def test_restart_with_same_server_id_recovers_own_jobs(self, tmp_path):
        state = tmp_path / "state"
        # Long lease: recovery must come from the restart itself —
        # start() re-queues rows stamped with its own id — because
        # claim() never self-steals and no peer exists to outwait it.
        a = start_in_thread(state, workers=1, lease_s=300.0,
                            server_id="box-1")
        try:
            client = ServeClient(port=a.port)
            job = client.submit("explore", circuits=["gcd", "dealer"],
                                budgets=[5, 6, 7])
            for event in client.stream(job["id"], timeout=120):
                if event["type"] == "point" and not event.get("resumed"):
                    break
            a.kill()  # row left "running", stamped server_id="box-1"
        finally:
            a.stop()
        b = start_in_thread(state, workers=1, lease_s=300.0,
                            server_id="box-1")
        try:
            final = ServeClient(port=b.port).wait(job["id"], timeout=180)
            assert final["state"] == "done"
            assert final["result"]["points"] == 6
            assert final["resumed"] >= 1  # journaled points replayed
        finally:
            b.stop()

    def test_deposed_server_stream_falls_back_instead_of_hanging(
            self, tmp_path):
        state = tmp_path / "state"
        a = start_in_thread(state, workers=1, lease_s=1.0)
        thief = LeaseStore(state / "queue.sqlite", lease_s=60.0)
        try:
            client = ServeClient(port=a.port)
            job = client.submit("explore",
                                circuits=["gcd", "dealer", "vender"],
                                budgets=[5, 6, 7])
            stream = client.stream(job["id"], timeout=120)
            for event in stream:
                if event["type"] == "point":
                    break
            # Steal the lease out from under the live server (as a
            # peer would after a stall) and finish the job as the new
            # owner.  The deposed server's heartbeat notices the loss,
            # abandons its run, and the SSE stream must fall back to
            # the queue-row state stream instead of hanging on
            # keep-alive comments until the client times out.
            stolen = thief.claim("thief", now=time.time() + 3600.0)
            assert stolen is not None and stolen.id == job["id"]
            assert thief.finish(job["id"], "thief", JobState.DONE,
                                result={"points": 0})
            tail = list(stream)  # must terminate well within timeout
            states = [e for e in tail if e["type"] == "state"]
            assert states and states[-1]["state"] == "done"
            assert states[-1]["server_id"] == "thief"
        finally:
            thief.close()
            a.stop()

    def test_graceful_stop_releases_leases_immediately(self, tmp_path):
        state = tmp_path / "state"
        # Long lease: a released job must NOT wait out the lease.
        a = start_in_thread(state, workers=1, lease_s=120.0)
        client = ServeClient(port=a.port)
        job = client.submit("explore", circuits=["gcd", "dealer"],
                            budgets=[5, 6, 7])
        for event in client.stream(job["id"], timeout=120):
            if event["type"] == "point":
                break
        a.stop()
        b = start_in_thread(state, workers=1, lease_s=120.0)
        try:
            final = ServeClient(port=b.port).wait(job["id"], timeout=180)
            assert final["state"] == "done"
            assert final["result"]["points"] == 6
        finally:
            b.stop()


class TestServerSentEvents:
    def test_sse_matches_poll_and_resumes_by_last_event_id(self, tmp_path):
        handle = start_in_thread(tmp_path / "state", workers=2)
        try:
            client = ServeClient(port=handle.port)
            job = client.submit("explore", **EXPLORE)
            events = list(client.stream(job["id"], timeout=120))
            kinds = [e["type"] for e in events]
            assert kinds.count("point") == 2
            assert "pareto" in kinds
            assert kinds[-1] == "state" and events[-1]["state"] == "done"
            # The finished feed replays identically over both modes.
            replayed = list(client.stream(job["id"], timeout=60,
                                          mode="poll"))
            assert [e for e in replayed if e["type"] != "state"] == \
                   [e for e in events if e["type"] != "state"]
            # Resume: events up to seq N are not replayed.
            seqs = [e["seq"] for e in events if "seq" in e]
            midpoint = seqs[len(seqs) // 2]
            tail = list(client.stream(job["id"], timeout=60,
                                      since=midpoint))
            assert all(e["seq"] > midpoint for e in tail if "seq" in e)
            assert tail  # the terminal state event always replays
        finally:
            handle.stop()

    def test_sse_streams_remote_jobs_as_state_transitions(self, tmp_path):
        state = tmp_path / "state"
        a = start_in_thread(state, workers=1, lease_s=5.0)
        b = start_in_thread(state, workers=1, lease_s=5.0)
        try:
            client = ServeClient(port=a.port)
            job = client.submit("explore", **EXPLORE)
            # Follow from whichever server does NOT own the job.
            row = None
            for _ in range(200):
                row = a.server.queue.get(job["id"])
                if row.server_id is not None or row.terminal:
                    break
                time.sleep(0.05)
            follower = ServeClient(
                port=b.port if row.server_id == a.server.server_id
                else a.port)
            events = list(follower.stream(job["id"], timeout=120))
            states = [e["state"] for e in events if e["type"] == "state"]
            assert states[-1] == "done"
        finally:
            a.stop()
            b.stop()

    def test_event_ring_overflow_surfaces_as_gap(self, tmp_path):
        handle = start_in_thread(tmp_path / "state", workers=1)
        try:
            handle.server.registry.max_events = 2  # tiny ring
            client = ServeClient(port=handle.port)
            job = client.submit("explore", circuits=["gcd"],
                                budgets=[5, 6, 7])
            client.wait(job["id"], timeout=120)
            # The feed outgrew the ring; a from-zero poll must say so.
            events = list(client.stream(job["id"], timeout=60,
                                        mode="poll"))
            assert events[0]["type"] == "gap"
            assert events[0]["dropped"] >= 1
            with pytest.raises(EventGapError):
                list(client.stream(job["id"], timeout=60, mode="poll",
                                   raise_on_gap=True))
            # The SSE replay surfaces the same gap.
            sse = list(client.stream(job["id"], timeout=60))
            assert sse[0]["type"] == "gap"
        finally:
            handle.stop()


def _raw(port: int, payload: bytes, timeout: float = 10.0) -> bytes:
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout) as sock:
        sock.sendall(payload)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except TimeoutError:
            pass
        return b"".join(chunks)


class TestHTTPHardening:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        handle = start_in_thread(tmp_path_factory.mktemp("http-state"),
                                 workers=1)
        yield handle
        handle.stop()

    def test_keep_alive_serves_many_requests_per_connection(self, served):
        request = (b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
        with socket.create_connection(("127.0.0.1", served.port),
                                      timeout=10.0) as sock:
            reader = sock.makefile("rb")
            for _ in range(3):
                sock.sendall(request)
                status = reader.readline()
                assert b"200" in status
                length = 0
                while True:
                    line = reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    name, _, value = line.decode().partition(":")
                    if name.lower() == "connection":
                        assert value.strip() == "keep-alive"
                    if name.lower() == "content-length":
                        length = int(value)
                body = reader.read(length)
                assert json.loads(body)["ok"] is True

    def test_connection_close_is_honored(self, served):
        raw = _raw(served.port,
                   b"GET /health HTTP/1.1\r\nHost: x\r\n"
                   b"Connection: close\r\n\r\n")
        head = raw.split(b"\r\n\r\n", 1)[0].lower()
        assert b"connection: close" in head  # and recv saw EOF

    def test_slowloris_header_trickle_times_out(self, served):
        served.server.request_timeout_s = 0.4
        try:
            start = time.monotonic()
            raw = _raw(served.port,
                       b"GET /health HTTP/1.1\r\nHost: x\r\n"
                       b"X-Trickle: never-finished")  # no terminator
            elapsed = time.monotonic() - start
            assert b"408" in raw.split(b"\r\n", 1)[0]
            assert elapsed < 5.0
        finally:
            served.server.request_timeout_s = 30.0

    def test_header_count_cap(self, served):
        headers = b"".join(b"X-H%d: v\r\n" % i for i in range(80))
        raw = _raw(served.port,
                   b"GET /health HTTP/1.1\r\n" + headers + b"\r\n")
        assert b"431" in raw.split(b"\r\n", 1)[0]

    def test_header_line_size_cap(self, served):
        raw = _raw(served.port,
                   b"GET /health HTTP/1.1\r\nX-Big: " + b"a" * 9000
                   + b"\r\n\r\n")
        assert b"431" in raw.split(b"\r\n", 1)[0]

    def test_oversized_body_is_rejected(self, served):
        raw = _raw(served.port,
                   b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                   b"Content-Length: 999999999\r\n\r\n")
        assert b"413" in raw.split(b"\r\n", 1)[0]

    def test_chunk_size_validation(self, served):
        client = ServeClient(port=served.port)
        for bad in (0, -3, "2", True):
            with pytest.raises(ServeError) as err:
                client.submit("explore", circuits=["gcd"], budgets=[6],
                              chunk_size=bad)
            assert err.value.status == 400
        job = client.submit("explore", circuits=["gcd"], budgets=[5, 6],
                            chunk_size=2)
        final = client.wait(job["id"], timeout=120)
        assert final["result"]["points"] == 2  # no point dropped

    def test_maintenance_guard_matches_journals_exactly(self, tmp_path):
        # No started server (no claim loop): the queued row stays
        # queued, so its journal is deterministically "in flight".
        from repro.serve import JobServer

        server = JobServer(tmp_path / "state", workers=1)
        try:
            row, _ = server.queue.submit(
                "explore", {"circuits": ["zz-no-claim"], "budgets": [1]})
            # A sibling journal whose name merely STARTS with the active
            # key must still be compacted; only <key>.jsonl is guarded.
            active = server.journal_dir / f"{row.key}.jsonl"
            sibling = server.journal_dir / f"{row.key}-old.jsonl"
            for path in (active, sibling):
                open_journal(path, "explore-points").close()
            report = server.maintenance()
            assert report["journals"][active.name] == {
                "skipped": "job in flight"}
            assert "kept" in report["journals"][sibling.name]
            assert "queue" in report
        finally:
            server.queue.close()
            server.store.close()


class TestConcurrentSubmitters:
    def test_racing_identical_submissions_share_one_row(self, tmp_path):
        queue = LeaseStore(tmp_path / "queue.sqlite", lease_s=10.0)
        ids: list[str] = []
        created_flags: list[bool] = []
        lock = threading.Lock()

        def submitter():
            row, created = queue.submit("explore", PARAMS)
            with lock:
                ids.append(row.id)
                created_flags.append(created)

        threads = [threading.Thread(target=submitter) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids)) == 1
        assert created_flags.count(True) == 1
        queue.close()
