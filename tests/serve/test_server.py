"""JobServer end-to-end: HTTP API, concurrency, crash recovery.

Every test runs a real server (background thread, ephemeral port, a
private process pool) and drives it through :class:`ServeClient` — the
same path the CLI and the smoke bench use.
"""

import threading

import pytest

from repro.pipeline.explore import load_point_journal
from repro.serve import ServeClient, ServeError, start_in_thread

EXPLORE = {"circuits": ["gcd"], "budgets": [6, 7]}
OPTIMIZE = {"circuit": "gcd", "budgets": [6], "driver": "random",
            "iters": 6, "seed": 3, "sim_vectors": 16}


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One server shared by the module's read-mostly tests."""
    state = tmp_path_factory.mktemp("serve-state")
    handle = start_in_thread(state, workers=2)
    client = ServeClient(port=handle.port)
    yield state, handle, client
    handle.stop()


class TestAPI:
    def test_health_and_stats(self, served):
        _, _, client = served
        assert client.health()["ok"] is True
        stats = client.stats()
        assert stats["workers"] == 2
        assert "entries" in stats["store"]

    def test_explore_job_streams_points_and_pareto(self, served):
        _, _, client = served
        job = client.submit("explore", **EXPLORE)
        events = list(client.stream(job["id"], timeout=120))
        kinds = [e["type"] for e in events]
        assert kinds.count("point") == 2
        assert "pareto" in kinds
        assert kinds[-1] == "state" and events[-1]["state"] == "done"
        final = client.job(job["id"])
        assert final["result"]["points"] == 2
        assert final["result"]["pareto_size"] >= 1
        assert final["total"] == 2 and final["completed"] == 2

    def test_resubmit_after_done_resumes_from_journal(self, served):
        _, _, client = served
        first = client.wait(client.submit("explore", **EXPLORE)["id"],
                            timeout=120)
        again = client.submit("explore", **EXPLORE)
        assert again["id"] != first["id"]  # new job...
        final = client.wait(again["id"], timeout=120)
        assert final["resumed"] == 2       # ...but zero recomputes
        assert final["result"]["points"] == 2

    def test_optimize_job_reports_best(self, served):
        _, _, client = served
        job = client.submit("optimize", **OPTIMIZE)
        events = list(client.stream(job["id"], timeout=120))
        assert any(e["type"] == "best" and "score" in e for e in events)
        final = client.job(job["id"])
        assert final["result"]["evaluations"] > 0
        assert "outcome" in final["result"]

    def test_portfolio_job_streams_pareto_archives(self, served):
        _, _, client = served
        job = client.submit("optimize", circuit="gcd", budgets=[6, 7],
                            driver="portfolio", iters=20, seed=3,
                            workers=1, sim_vectors=16)
        events = list(client.stream(job["id"], timeout=120))
        archives = [e for e in events if e["type"] == "pareto"]
        assert archives  # the evolving archive streams live
        assert all("round" in e and e["size"] >= 1 for e in archives)
        assert all(e["front"] for e in archives)
        final = client.job(job["id"])
        result = final["result"]
        assert result["pareto_size"] >= 1
        assert result["outcome"]["pareto"]
        assert result["evaluations"] > 0
        # Warm resubmission: the record-durability journal serves every
        # evaluation, and the hit counters surface in the summary.
        again = client.wait(client.submit(
            "optimize", circuit="gcd", budgets=[6, 7],
            driver="portfolio", iters=20, seed=3, workers=1,
            sim_vectors=16)["id"], timeout=120)
        warm = again["result"]
        assert warm["outcome"] == result["outcome"]
        assert warm["evaluations"] == 0
        assert warm["resumed"] > 0
        assert warm["memo_hits"] > 0

    def test_identical_inflight_submissions_share_a_job(self, served):
        _, _, client = served
        params = {"circuits": ["vender"], "budgets": [6, 7, 8]}
        first = client.submit("explore", **params)
        second = client.submit("explore", **params)
        assert second["id"] == first["id"]
        client.wait(first["id"], timeout=120)

    def test_bad_requests_are_400s(self, served):
        _, _, client = served
        with pytest.raises(ServeError) as err:
            client.submit("explore", circuits=[], budgets=[6])
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.submit("frobnicate", circuits=["gcd"], budgets=[6])
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.job("j-999-deadbeef")
        assert err.value.status == 404

    def test_failed_job_reports_the_error(self, served):
        _, _, client = served
        job = client.submit("explore", circuits=["no-such-circuit"],
                            budgets=[6])
        final = client.wait(job["id"], timeout=120,
                            raise_on_failure=False)
        assert final["state"] == "failed"
        assert final["error"]

    def test_maintenance_compacts_and_gcs(self, served):
        _, _, client = served
        report = client.maintenance()
        assert "journals" in report and "store" in report
        assert report["store"]["dropped"] == 0  # index and tree agree


class TestConcurrentClients:
    def test_many_clients_one_server(self, tmp_path):
        handle = start_in_thread(tmp_path / "state", workers=2)
        try:
            port = handle.port
            jobs = [("explore", {"circuits": ["gcd"], "budgets": [6, 7]}),
                    ("explore", {"circuits": ["dealer"], "budgets": [6]}),
                    ("optimize", OPTIMIZE)]
            results: dict[int, dict] = {}
            errors: list[Exception] = []

            def run_client(slot, kind, params):
                client = ServeClient(port=port)  # own connections
                try:
                    job = client.submit(kind, **params)
                    results[slot] = client.wait(job["id"], timeout=180)
                except Exception as error:  # noqa: BLE001 - collected
                    errors.append(error)

            threads = [threading.Thread(target=run_client,
                                        args=(slot, kind, params))
                       for slot, (kind, params) in enumerate(jobs)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert errors == []
            assert sorted(results) == [0, 1, 2]
            assert all(r["state"] == "done" for r in results.values())
            assert results[0]["result"]["points"] == 2
            assert results[2]["result"]["evaluations"] > 0
        finally:
            handle.stop()


class TestCrashRecovery:
    def test_kill_and_restart_resumes_without_recompute(self, tmp_path):
        state = tmp_path / "state"
        # Short lease: the kill leaves the row leased to a dead server,
        # and the restart can only re-claim it once that lease expires.
        handle = start_in_thread(state, workers=2, lease_s=2.0)
        client = ServeClient(port=handle.port)
        params = {"circuits": ["gcd", "dealer", "vender"],
                  "budgets": [5, 6, 7]}
        job = client.submit("explore", **params)
        # Let some (not necessarily all) points land, then pull the plug.
        for event in client.stream(job["id"], timeout=120):
            if event["type"] == "point":
                break
        handle.kill()

        journal = state / "journals" / f"{job['key']}.jsonl"
        banked = len(load_point_journal(journal))
        assert banked >= 1  # the crash left journaled work behind

        restarted = start_in_thread(state, workers=2, lease_s=2.0)
        try:
            client = ServeClient(port=restarted.port)
            revived = client.job(job["id"])  # same id, re-queued
            assert revived["state"] in ("queued", "running", "done")
            final = client.wait(job["id"], timeout=180)
            assert final["state"] == "done"
            assert final["result"]["points"] == 9
            assert final["resumed"] >= banked  # banked points not redone
        finally:
            restarted.stop()

    def test_restart_with_clean_state_is_empty(self, tmp_path):
        handle = start_in_thread(tmp_path / "state", workers=1)
        try:
            assert ServeClient(port=handle.port).jobs() == []
        finally:
            handle.stop()


class TestCancellation:
    def test_cancel_running_explore(self, tmp_path):
        handle = start_in_thread(tmp_path / "state", workers=1)
        try:
            client = ServeClient(port=handle.port)
            job = client.submit("explore",
                                circuits=["gcd", "dealer", "vender"],
                                budgets=[5, 6, 7, 8])
            cancel = client.cancel(job["id"])
            assert cancel["ok"] is True
            final = client.wait(job["id"], timeout=120)
            assert final["state"] == "cancelled"
            assert final["cancel_requested"] is True
        finally:
            handle.stop()
