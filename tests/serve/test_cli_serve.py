"""The serve-facing CLI: serve, submit, jobs, journal compact."""

import threading

import pytest

from repro.cli import main
from repro.opt.journal import append_record, load_journal, open_journal
from repro.serve import ServeClient, start_in_thread


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    handle = start_in_thread(tmp_path_factory.mktemp("cli-serve"),
                             workers=1)
    yield handle
    handle.stop()


def submit(handle, *argv):
    return main(["submit", *argv, "--port", str(handle.port)])


class TestSubmit:
    def test_explore_watch_streams_to_stdout(self, served, capsys):
        assert submit(served, "explore", "gcd", "--budgets", "6,7",
                      "--watch") == 0
        out = capsys.readouterr().out
        assert "queued" in out
        assert out.count("point  gcd") == 2
        assert "pareto" in out
        assert "-> done" in out
        assert "pareto 2/2" in out  # final summary line

    def test_optimize_watch_reports_best(self, served, capsys):
        assert submit(served, "optimize", "gcd", "--budgets", "6",
                      "--search", "random", "--iters", "5",
                      "--sim-vectors", "16", "--watch") == 0
        out = capsys.readouterr().out
        assert "best" in out and "best score" in out

    def test_submit_without_watch_returns_immediately(self, served,
                                                      capsys):
        assert submit(served, "explore", "gcd", "--budgets", "6") == 0
        out = capsys.readouterr().out
        assert "job j-" in out
        job_id = out.split()[1]
        ServeClient(port=served.port).wait(job_id, timeout=120)

    def test_optimize_needs_exactly_one_circuit(self, served):
        with pytest.raises(SystemExit, match="exactly one"):
            submit(served, "optimize", "gcd", "dealer",
                   "--budgets", "6")

    def test_bad_budgets_is_a_clean_error(self, served):
        with pytest.raises(SystemExit, match="budgets"):
            submit(served, "explore", "gcd", "--budgets", "x,y")

    def test_unreachable_server_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="error"):
            main(["submit", "explore", "gcd", "--budgets", "6",
                  "--port", "1", "--timeout", "2"])


class TestJobs:
    def test_list_and_inspect(self, served, capsys):
        submit(served, "explore", "dealer", "--budgets", "6", "--watch")
        capsys.readouterr()
        assert main(["jobs", "--port", str(served.port)]) == 0
        out = capsys.readouterr().out
        assert "explore" in out and "done" in out
        job_id = next(line.split()[0] for line in out.splitlines()
                      if "dealer" in line or "explore" in line)
        assert main(["jobs", job_id, "--events",
                     "--port", str(served.port)]) == 0
        detail = capsys.readouterr().out
        assert job_id in detail
        assert "point" in detail  # event feed printed

    def test_empty_server_says_no_jobs(self, tmp_path, capsys):
        handle = start_in_thread(tmp_path / "state", workers=1)
        try:
            assert main(["jobs", "--port", str(handle.port)]) == 0
            assert "no jobs" in capsys.readouterr().out
        finally:
            handle.stop()

    def test_unknown_job_is_a_clean_error(self, served):
        with pytest.raises(SystemExit, match="unknown job"):
            main(["jobs", "j-999-deadbeef", "--port", str(served.port)])


class TestServeCommand:
    def test_serve_runs_until_shutdown(self, tmp_path, capsys):
        status: dict[str, int] = {}

        def run() -> None:
            status["exit"] = main(["serve", "--state",
                                   str(tmp_path / "state"),
                                   "--port", "0"])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        # The ephemeral port is only printed, so read it from stdout.
        import re
        import time

        port = None
        deadline = time.monotonic() + 30
        while port is None and time.monotonic() < deadline:
            match = re.search(r"http://127\.0\.0\.1:(\d+)",
                              capsys.readouterr().out)
            if match:
                port = int(match.group(1))
            else:
                time.sleep(0.05)
        assert port is not None, "serve never printed its address"
        client = ServeClient(port=port)
        assert client.health()["ok"] is True
        client.shutdown()
        thread.join(timeout=30)
        assert status.get("exit") == 0


class TestJournalCompact:
    def test_compacts_and_reports(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        append_record(handle, "a", {"v": 2})
        handle.close()
        assert main(["journal", "compact", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "kept 1" in out and "dropped 1" in out
        assert load_journal(journal)["a"]["v"] == 2

    def test_missing_file_fails_but_continues(self, tmp_path, capsys):
        journal = tmp_path / "real.jsonl"
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        handle.close()
        assert main(["journal", "compact", str(tmp_path / "nope.jsonl"),
                     str(journal)]) == 1
        captured = capsys.readouterr()
        assert "missing" in captured.err
        assert "kept 1" in captured.out  # the real one still compacted
