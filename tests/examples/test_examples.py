"""Every example script runs to completion (smoke + assertion checks —
the examples contain their own correctness asserts)."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # artifacts (.dot/.vhd) land in tmp
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did


def test_there_are_at_least_five_examples():
    assert len(EXAMPLES) >= 5
