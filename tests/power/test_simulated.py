"""Simulation-based power estimation (Table III machinery)."""

import pytest

from repro.flow import synthesize_pair
from repro.power.simulated import compare_designs, measure_power


@pytest.fixture(scope="module")
def dealer_pair():
    from repro.circuits import dealer
    return synthesize_pair(dealer(), 6)


class TestMeasurePower:
    def test_components_positive(self, dealer_pair):
        power = measure_power(dealer_pair.managed.design, n_vectors=64)
        assert power.datapath > 0
        assert power.controller_energy > 0
        assert power.total > power.datapath
        assert power.samples == 64

    def test_same_seed_reproducible(self, dealer_pair):
        a = measure_power(dealer_pair.managed.design, n_vectors=32, seed=9)
        b = measure_power(dealer_pair.managed.design, n_vectors=32, seed=9)
        assert a == b

    def test_pm_off_consumes_at_least_as_much(self, dealer_pair):
        design = dealer_pair.managed.design
        on = measure_power(design, n_vectors=128, power_management=True)
        off = measure_power(design, n_vectors=128, power_management=False)
        assert off.datapath >= on.datapath


class TestCompareDesigns:
    def test_dealer_saves_power(self, dealer_pair):
        cmp = compare_designs(dealer_pair.baseline.design,
                              dealer_pair.managed.design, n_vectors=128)
        assert cmp.reduction_pct > 10.0
        assert cmp.datapath_reduction_pct >= cmp.reduction_pct

    def test_vender_saves_power(self):
        from repro.circuits import vender
        pair = synthesize_pair(vender(), 6)
        cmp = compare_designs(pair.baseline.design, pair.managed.design,
                              n_vectors=128)
        assert cmp.reduction_pct > 10.0

    def test_controller_complexity_erodes_savings(self, dealer_pair):
        """Paper: Table III savings < Table II savings because the PM
        controller is more complex."""
        cmp = compare_designs(dealer_pair.baseline.design,
                              dealer_pair.managed.design, n_vectors=128)
        assert cmp.managed.controller_energy >= cmp.orig.controller_energy
        assert cmp.reduction_pct <= cmp.datapath_reduction_pct

    def test_area_fields(self, dealer_pair):
        cmp = compare_designs(dealer_pair.baseline.design,
                              dealer_pair.managed.design, n_vectors=32)
        assert cmp.area_orig > 0 and cmp.area_new > 0
        assert cmp.area_increase == pytest.approx(
            cmp.area_new / cmp.area_orig)
