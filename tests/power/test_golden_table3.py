"""Golden regression: Table III simulated-power numbers at seed 1996.

These values were produced by the interpreted RTLSimulator (the engine is
differentially proven equal to it) and are pinned so that simulator or
engine refactors cannot silently drift the repo's reproduction of the
paper's Table III.  If a change legitimately alters the energy model,
regenerate these constants and say so in the PR.
"""

import pytest

from repro.circuits import TABLE3_BUDGETS, build
from repro.ir.ops import ResourceClass
from repro.paper_tables import measure_table3
from repro.pipeline import FlowConfig, run_pair
from repro.power.simulated import compare_designs

# compare_designs defaults: 256 uniform random vectors, seed 1996.
GOLDEN_COMPARE = {
    "dealer": {
        "area": (344, 364),
        "orig_fu": {
            ResourceClass.ADD: 2.498046875,
            ResourceClass.COMP: 3.0227864583333335,
            ResourceClass.MUX: 1.1722005208333333,
            ResourceClass.SUB: 1.50390625,
        },
        "orig_reg": 4.20625,
        "orig_ctrl": 2.088,
        "orig_total": 14.49119010416667,
        "managed_fu": {
            ResourceClass.ADD: 2.0576171875,
            ResourceClass.COMP: 2.9654947916666665,
            ResourceClass.MUX: 0.9713541666666666,
            ResourceClass.SUB: 0.2138671875,
        },
        "managed_reg": 2.6144531250000003,
        "managed_ctrl": 2.448,
        "managed_total": 11.270786458333333,
        "reduction_pct": 22.223182655697613,
        "datapath_reduction_pct": 28.866796491578018,
    },
    "gcd": {
        "area": (288, 292),
        "orig_fu": {
            ResourceClass.COMP: 1.4908854166666667,
            ResourceClass.MUX: 2.9803059895833335,
            ResourceClass.SUB: 1.45556640625,
        },
        "orig_reg": 2.9515625,
        "orig_ctrl": 2.436,
        "orig_total": 11.3143203125,
        "managed_fu": {
            ResourceClass.COMP: 1.4908854166666667,
            ResourceClass.MUX: 2.9803059895833335,
            ResourceClass.SUB: 1.44775390625,
        },
        "managed_reg": 2.9484375000000003,
        "managed_ctrl": 2.604,
        "managed_total": 11.4713828125,
        # Uniform 8-bit pairs starve gcd's done-branch: PM saves nothing
        # and the bigger controller costs energy.  This is exactly why
        # Table III regeneration uses the balanced workload for gcd.
        "reduction_pct": -1.3881744166857157,
        "datapath_reduction_pct": 0.1231933475592198,
    },
    "vender": {
        "area": (784, 794),
        "orig_fu": {
            ResourceClass.ADD: 4.41064453125,
            ResourceClass.COMP: 3.9348958333333335,
            ResourceClass.MUL: 11.689453125,
            ResourceClass.MUX: 2.3193359375,
            ResourceClass.SUB: 4.45751953125,
        },
        "orig_reg": 7.56640625,
        "orig_ctrl": 4.104,
        "orig_total": 38.482255208333335,
        "managed_fu": {
            ResourceClass.ADD: 4.41064453125,
            ResourceClass.COMP: 3.9348958333333335,
            ResourceClass.MUL: 7.060546875,
            ResourceClass.MUX: 3.0027669270833335,
            ResourceClass.SUB: 1.52392578125,
        },
        "managed_reg": 6.153515625000001,
        "managed_ctrl": 3.96,
        "managed_total": 30.04629557291667,
        "reduction_pct": 21.92168725493473,
        "datapath_reduction_pct": 24.11978032383297,
    },
}

# measure_table3 defaults: 192 vectors, per-circuit workloads, seed 1996.
GOLDEN_TABLE3_ROWS = {
    "dealer": (344, 364, 14.474414930555557, 11.242921875,
               22.325552162622202),
    "gcd": (288, 292, 9.536217013888889, 8.891630208333334,
            6.759355461570932),
    "vender": (784, 794, 38.28698611111111, 29.949236111111112,
               21.77698180735186),
}

APPROX = dict(rel=1e-12, abs=1e-12)


@pytest.mark.parametrize("name", sorted(TABLE3_BUDGETS))
def test_compare_designs_pinned(name):
    golden = GOLDEN_COMPARE[name]
    pair = run_pair(build(name), FlowConfig(n_steps=TABLE3_BUDGETS[name]))
    cmp = compare_designs(pair.baseline.design, pair.managed.design)
    assert (cmp.area_orig, cmp.area_new) == golden["area"]
    for power, prefix in ((cmp.orig, "orig"), (cmp.managed, "managed")):
        assert power.samples == 256
        assert set(power.fu_energy) == set(golden[f"{prefix}_fu"])
        for cls, expected in golden[f"{prefix}_fu"].items():
            assert power.fu_energy[cls] == pytest.approx(expected, **APPROX)
        assert power.register_energy == pytest.approx(
            golden[f"{prefix}_reg"], **APPROX)
        assert power.controller_energy == pytest.approx(
            golden[f"{prefix}_ctrl"], **APPROX)
        assert power.total == pytest.approx(
            golden[f"{prefix}_total"], **APPROX)
    assert cmp.reduction_pct == pytest.approx(
        golden["reduction_pct"], **APPROX)
    assert cmp.datapath_reduction_pct == pytest.approx(
        golden["datapath_reduction_pct"], **APPROX)


def test_measure_table3_pinned():
    rows = {row.name: row for row in measure_table3()}
    assert set(rows) == set(GOLDEN_TABLE3_ROWS)
    for name, (area_orig, area_new, power_orig, power_new,
               reduction) in GOLDEN_TABLE3_ROWS.items():
        row = rows[name]
        assert row.control_steps == TABLE3_BUDGETS[name]
        assert (row.area_orig, row.area_new) == (area_orig, area_new)
        assert row.power_orig == pytest.approx(power_orig, **APPROX)
        assert row.power_new == pytest.approx(power_new, **APPROX)
        assert row.power_reduction_pct == pytest.approx(reduction, **APPROX)
