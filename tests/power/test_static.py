"""Static expected-activation power model (Table II machinery)."""

import pytest

from repro.core.pm_pass import apply_power_management
from repro.ir.ops import ResourceClass
from repro.power.static import (
    SelectModel,
    all_execution_probabilities,
    execution_probability,
    expected_op_counts,
    static_power,
)
from repro.power.weights import PAPER_WEIGHTS, PowerWeights


class TestExecutionProbability:
    def test_ungated_op_runs_always(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        comp = next(n for n in result.graph if n.name == "c")
        assert execution_probability(result, comp.nid) == 1.0

    def test_single_guard_is_half(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        sub = next(n for n in result.graph if n.name == "a_minus_b")
        assert execution_probability(result, sub.nid) == 0.5

    def test_same_driver_guards_count_once(self, gcd_graph):
        """gcd's diff sits in two cones selected by the same signal: the
        probability is 1/2, not 1/4 (the conditions are identical)."""
        result = apply_power_management(gcd_graph, 7)
        diff = next(n for n in result.graph if n.name == "diff")
        assert len(result.gating[diff.nid]) >= 2
        assert execution_probability(result, diff.nid) == 0.5

    def test_nested_distinct_guards_multiply(self, dealer_graph):
        result = apply_power_management(dealer_graph, 6)
        margin = next(n for n in result.graph if n.name == "margin")
        assert execution_probability(result, margin.nid) == 0.25

    def test_custom_select_probability(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        g = result.graph
        comp = next(n for n in g if n.name == "c")
        selects = SelectModel(default=0.5, per_driver={comp.nid: 0.9})
        gt_side = next(n for n in g if n.name == "a_minus_b")
        le_side = next(n for n in g if n.name == "b_minus_a")
        assert execution_probability(result, gt_side.nid, selects) == \
            pytest.approx(0.9)
        assert execution_probability(result, le_side.nid, selects) == \
            pytest.approx(0.1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SelectModel(default=1.5)
        with pytest.raises(ValueError):
            SelectModel(per_driver={0: -0.1})


class TestExpectedCounts:
    def test_gcd_matches_paper_table2(self, gcd_graph):
        """Our gcd reproduces the paper's Table II row exactly at 5 and 6
        steps: MUX 5.50, COMP 2.00, '-' 0.50."""
        for steps in (5, 6):
            result = apply_power_management(gcd_graph, steps)
            counts = expected_op_counts(result)
            assert counts[ResourceClass.MUX] == pytest.approx(5.5)
            assert counts[ResourceClass.COMP] == pytest.approx(2.0)
            assert counts[ResourceClass.SUB] == pytest.approx(0.5)

    def test_counts_without_pm_equal_totals(self, vender_graph):
        from repro.core.pm_pass import PMOptions
        result = apply_power_management(vender_graph, 6,
                                        PMOptions(enabled=False))
        counts = expected_op_counts(result)
        assert counts[ResourceClass.MUX] == 6.0
        assert counts[ResourceClass.MUL] == 2.0

    def test_vender_multipliers_average_one(self, vender_graph):
        result = apply_power_management(vender_graph, 6)
        counts = expected_op_counts(result)
        assert counts[ResourceClass.MUL] == pytest.approx(1.0)


class TestStaticPower:
    def test_gcd_reduction_matches_paper(self, gcd_graph):
        """Paper Table II: gcd at 5 and 6 steps saves 11.76%."""
        for steps in (5, 6):
            report = static_power(apply_power_management(gcd_graph, steps))
            assert report.reduction_pct == pytest.approx(11.76, abs=0.01)

    def test_abs_diff_reduction(self, abs_diff_graph):
        # Gates both subs (2 x 3 x 0.5 = 3) of total 1+4+6 = 11.
        report = static_power(apply_power_management(abs_diff_graph, 3))
        assert report.reduction_pct == pytest.approx(100 * 3 / 11)

    def test_no_pm_no_reduction(self, abs_diff_graph):
        report = static_power(apply_power_management(abs_diff_graph, 2))
        assert report.reduction_pct == 0.0

    def test_reduction_uses_weights(self, vender_graph):
        result = apply_power_management(vender_graph, 6)
        flat = PowerWeights({cls: 1.0 for cls in PAPER_WEIGHTS})
        weighted = static_power(result)
        unweighted = static_power(result, weights=flat)
        assert weighted.reduction_pct != unweighted.reduction_pct

    def test_probabilities_cover_all_ops(self, dealer_graph):
        result = apply_power_management(dealer_graph, 6)
        probs = all_execution_probabilities(result)
        assert set(probs) == {n.nid for n in result.graph.operations()}
        assert all(0.0 <= p <= 1.0 for p in probs.values())


class TestWeights:
    def test_paper_values(self):
        assert PAPER_WEIGHTS[ResourceClass.MUX] == 1
        assert PAPER_WEIGHTS[ResourceClass.COMP] == 4
        assert PAPER_WEIGHTS[ResourceClass.ADD] == 3
        assert PAPER_WEIGHTS[ResourceClass.SUB] == 3
        assert PAPER_WEIGHTS[ResourceClass.MUL] == 20

    def test_total_counts_every_op_once(self, gcd_graph):
        # 6 MUX + 2 COMP*4 + 1 SUB*3 = 17
        assert PowerWeights().total(gcd_graph) == 17.0

    def test_missing_class_raises(self):
        weights = PowerWeights({ResourceClass.ADD: 1.0})
        with pytest.raises(KeyError, match="no power weight"):
            weights.of(ResourceClass.MUL)
