"""Profiled select probabilities and workload-shaped vectors."""

import pytest

from repro.circuits import gcd
from repro.core.pm_pass import apply_power_management
from repro.power.profile import profile_selects
from repro.power.static import static_power
from repro.sim.workloads import balanced_condition_vectors, gcd_trace_vectors


@pytest.fixture(scope="module")
def gcd_graph_m():
    return gcd()


class TestGcdTraces:
    def test_traces_end_with_equal_pair(self, gcd_graph_m):
        vectors = gcd_trace_vectors(gcd_graph_m, n_runs=10, seed=4)
        equal = [v for v in vectors if v["a"] == v["b"]]
        assert len(equal) >= 10  # one terminating pair per run

    def test_traces_follow_gcd_recurrence(self, gcd_graph_m):
        from repro.sim.reference import evaluate
        vectors = gcd_trace_vectors(gcd_graph_m, n_runs=3, seed=8)
        for prev, nxt in zip(vectors, vectors[1:]):
            if prev["a"] == prev["b"]:
                continue  # run boundary
            out = evaluate(gcd_graph_m, prev)
            if not out["done"]:
                expected = {"a": out["gcd"], "b": out["next_b"]}
                if nxt != expected:
                    # must be a new run's start, preceded by a done pair
                    assert out["done"] or prev["a"] != prev["b"]

    def test_deterministic_by_seed(self, gcd_graph_m):
        a = gcd_trace_vectors(gcd_graph_m, n_runs=5, seed=1)
        b = gcd_trace_vectors(gcd_graph_m, n_runs=5, seed=1)
        assert a == b


class TestBalancedVectors:
    def test_equal_fraction_honoured(self, gcd_graph_m):
        vectors = balanced_condition_vectors(gcd_graph_m, count=400, seed=2,
                                             equal_fraction=0.5)
        equal = sum(1 for v in vectors if v["a"] == v["b"])
        assert 140 <= equal <= 260  # ~50% with slack

    def test_extremes(self, gcd_graph_m):
        none = balanced_condition_vectors(gcd_graph_m, count=50,
                                          equal_fraction=0.0)
        assert all(len(set(v.values())) >= 1 for v in none)
        all_eq = balanced_condition_vectors(gcd_graph_m, count=50,
                                            equal_fraction=1.0)
        assert all(v["a"] == v["b"] for v in all_eq)

    def test_bad_fraction_rejected(self, gcd_graph_m):
        with pytest.raises(ValueError):
            balanced_condition_vectors(gcd_graph_m, equal_fraction=1.5)


class TestProfiledSelects:
    def test_balanced_workload_profiles_near_half(self, gcd_graph_m):
        vectors = balanced_condition_vectors(gcd_graph_m, count=600, seed=3)
        model = profile_selects(gcd_graph_m, vectors)
        c_run = next(n for n in gcd_graph_m if n.name == "c_run")
        assert model.prob_one(c_run.nid) == pytest.approx(0.5, abs=0.1)

    def test_uniform_workload_rarely_done(self, gcd_graph_m):
        from repro.sim.vectors import random_vectors
        vectors = random_vectors(gcd_graph_m, 300, seed=6)
        model = profile_selects(gcd_graph_m, vectors)
        c_run = next(n for n in gcd_graph_m if n.name == "c_run")
        assert model.prob_one(c_run.nid) > 0.95  # a != b almost surely

    def test_profiled_static_power_tracks_workload(self, gcd_graph_m):
        """With the profiled (biased) selects the static model predicts far
        smaller savings than the uniform assumption — the Table II vs
        Table III gap, explained."""
        result = apply_power_management(gcd_graph_m, 7)
        from repro.sim.vectors import random_vectors
        uniform_pred = static_power(result).reduction_pct
        profiled = profile_selects(
            gcd_graph_m, random_vectors(gcd_graph_m, 200, seed=9))
        biased_pred = static_power(result, selects=profiled).reduction_pct
        assert biased_pred < uniform_pred / 2

    def test_empty_workload_rejected(self, gcd_graph_m):
        with pytest.raises(ValueError, match="at least one vector"):
            profile_selects(gcd_graph_m, [])
