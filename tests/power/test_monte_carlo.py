"""Monte Carlo power estimation: convergence, caps, and streaming."""

import pytest

from repro.pipeline import FlowConfig, run_pair
from repro.power.simulated import (
    MonteCarloPower,
    SimulatedPower,
    measure_power,
)
from repro.sim.vectors import iter_random_vectors, random_vectors


@pytest.fixture(scope="module")
def dealer_pair_designs():
    from repro.circuits import dealer

    pair = run_pair(dealer(), FlowConfig(n_steps=6))
    return pair.baseline.design, pair.managed.design


class TestMonteCarlo:
    def test_returns_monte_carlo_power(self, dealer_pair_designs):
        _, managed = dealer_pair_designs
        power = measure_power(managed, rel_tol=0.10)
        assert isinstance(power, MonteCarloPower)
        assert power.converged
        assert power.blocks >= 4  # minimum before convergence may fire
        assert power.samples >= 4 * 64
        assert power.samples == power.blocks * 64
        assert power.ci_halfwidth > 0.0
        assert power.rel_tol == 0.10

    def test_tighter_tolerance_draws_more_samples(self, dealer_pair_designs):
        _, managed = dealer_pair_designs
        loose = measure_power(managed, rel_tol=0.25)
        tight = measure_power(managed, rel_tol=0.02)
        assert tight.samples >= loose.samples
        assert tight.converged

    def test_estimate_agrees_with_fixed_sample(self, dealer_pair_designs):
        _, managed = dealer_pair_designs
        fixed = measure_power(managed, n_vectors=1024)
        mc = measure_power(managed, rel_tol=0.02)
        assert mc.total == pytest.approx(fixed.total, rel=0.10)

    def test_reported_ci_is_consistent(self, dealer_pair_designs):
        _, managed = dealer_pair_designs
        mc = measure_power(managed, rel_tol=0.05)
        assert mc.rel_ci == pytest.approx(mc.ci_halfwidth / mc.total)
        # Converged means the half-width met the block-mean criterion;
        # the merged-total estimate sits within a whisker of that mean.
        assert mc.rel_ci <= 0.05 * 1.25

    def test_invalid_rel_tol_raises(self, dealer_pair_designs):
        _, managed = dealer_pair_designs
        for bad in (0.0, -0.5):
            with pytest.raises(ValueError, match="rel_tol"):
                measure_power(managed, rel_tol=bad)

    def test_max_vectors_caps_unconvergeable_run(self, dealer_pair_designs):
        _, managed = dealer_pair_designs
        mc = measure_power(managed, rel_tol=1e-9, max_vectors=256,
                           block_size=64)
        assert not mc.converged
        assert mc.samples == 256

    def test_max_vectors_is_a_hard_budget(self, dealer_pair_designs):
        """A cap that block_size does not divide is still never exceeded;
        the clamped final block stays out of the statistics."""
        _, managed = dealer_pair_designs
        mc = measure_power(managed, rel_tol=1e-9, max_vectors=100,
                           block_size=64)
        assert mc.samples == 100
        assert mc.blocks == 1
        assert not mc.converged

    def test_finite_stream_exhaustion(self, dealer_pair_designs):
        import math

        _, managed = dealer_pair_designs
        vectors = random_vectors(managed.graph, 40)
        mc = measure_power(managed, vectors=iter(vectors), rel_tol=1e-9,
                           block_size=64)
        assert mc.samples == 40
        assert not mc.converged
        # 40 < block_size: a partial block feeds the estimate but not
        # the batch-means statistics, so no interval exists — reported
        # honestly as inf, never as a deceptively perfect 0.0.
        assert mc.blocks == 0
        assert math.isinf(mc.ci_halfwidth)
        assert math.isinf(mc.rel_ci)

    def test_partial_trailing_block_excluded_from_stats(
            self, dealer_pair_designs):
        """A 65-vector stream at block_size=64 yields one full block for
        the statistics; the stray sample still lands in the estimate."""
        _, managed = dealer_pair_designs
        vectors = random_vectors(managed.graph, 65)
        mc = measure_power(managed, vectors=iter(vectors), rel_tol=1e-9,
                           block_size=64)
        assert mc.samples == 65
        assert mc.blocks == 1
        assert not mc.converged

    def test_mismatched_prebuilt_engine_raises(self, dealer_pair_designs):
        from repro.sim.engine import CompiledEngine

        baseline, managed = dealer_pair_designs
        engine = CompiledEngine(managed, power_management=True)
        with pytest.raises(ValueError, match="prebuilt engine"):
            measure_power(managed, power_management=False, engine=engine)
        with pytest.raises(ValueError, match="prebuilt engine"):
            measure_power(baseline, power_management=True, engine=engine)

    def test_empty_stream_raises(self, dealer_pair_designs):
        _, managed = dealer_pair_designs
        with pytest.raises(ValueError, match="no vectors"):
            measure_power(managed, vectors=[], rel_tol=0.05)

    def test_streaming_source_is_lazy(self, dealer_pair_designs):
        """Converging at a loose tolerance consumes only what it needs
        from an endless stream."""
        _, managed = dealer_pair_designs
        stream = iter_random_vectors(managed.graph)
        mc = measure_power(managed, vectors=stream, rel_tol=0.25)
        assert mc.converged
        assert mc.samples < 1 << 16

    def test_fixed_mode_unchanged(self, dealer_pair_designs):
        """rel_tol=None keeps the exact legacy-compatible behaviour."""
        _, managed = dealer_pair_designs
        power = measure_power(managed, n_vectors=64)
        assert isinstance(power, SimulatedPower)
        assert not isinstance(power, MonteCarloPower)
        assert power.samples == 64

    def test_seeded_runs_reproducible(self, dealer_pair_designs):
        _, managed = dealer_pair_designs
        a = measure_power(managed, rel_tol=0.05, seed=7)
        b = measure_power(managed, rel_tol=0.05, seed=7)
        assert a == b
