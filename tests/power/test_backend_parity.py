"""Backend parity: power reports are byte-identical across sim backends.

The acceptance bar for the vectorized backend: ``measure_power`` (fixed
and Monte Carlo modes), ``compare_designs`` and ``explore(...,
sim_vectors=N)`` must produce *identical* — not merely close — numbers
on every backend at the same seed, because the engines are bit-exact and
the estimator arithmetic is shared.
"""

import pytest

from repro.circuits import build
from repro.pipeline import FlowConfig, explore, run_pair
from repro.pipeline.explore import clear_explore_cache
from repro.power.simulated import MonteCarloPower, compare_designs, \
    measure_power
from repro.sim.vectors import array_random_vectors


@pytest.fixture(scope="module")
def gcd_pair():
    return run_pair(build("gcd"), FlowConfig(n_steps=7))


#: Array backends held to byte-identity against the compiled engine.
ARRAY_BACKENDS = ("vectorized", "packed")


class TestFixedMode:
    @pytest.mark.parametrize("backend", ARRAY_BACKENDS)
    def test_fixed_sample_identical(self, gcd_pair, backend):
        design = gcd_pair.managed.design
        compiled = measure_power(design, n_vectors=96, backend="compiled")
        other = measure_power(design, n_vectors=96, backend=backend)
        assert compiled == other

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS)
    def test_matrix_input_identical(self, gcd_pair, backend):
        """A pre-generated input matrix is just another vector source."""
        design = gcd_pair.managed.design
        matrix = array_random_vectors(design.graph, 96)
        from_lists = measure_power(design, n_vectors=96, backend="compiled")
        from_matrix = measure_power(design, vectors=matrix, backend=backend)
        from_matrix_c = measure_power(design, vectors=matrix,
                                      backend="compiled")
        assert from_matrix == from_lists
        assert from_matrix_c == from_lists

    def test_mismatched_matrix_rejected_on_all_backends(self, gcd_pair):
        import numpy as np

        design = gcd_pair.managed.design
        bad = np.zeros((8, 3), dtype=np.int64)
        for backend in ("compiled",) + ARRAY_BACKENDS:
            with pytest.raises(ValueError, match="input matrix"):
                measure_power(design, vectors=bad, backend=backend)

    def test_float_matrix_rejected_on_all_backends(self, gcd_pair):
        """No silent truncation: a float matrix fails loudly everywhere."""
        import numpy as np

        design = gcd_pair.managed.design
        floats = np.zeros((8, 2), dtype=np.float64)
        for backend in ("compiled",) + ARRAY_BACKENDS:
            with pytest.raises(TypeError, match="integer dtype"):
                measure_power(design, vectors=floats, backend=backend)


class TestMonteCarlo:
    @pytest.mark.parametrize("backend", ARRAY_BACKENDS)
    def test_monte_carlo_identical(self, gcd_pair, backend):
        """Identical MonteCarloPower estimates — samples, blocks, CI and
        convergence flag included — at a fixed seed on every backend."""
        design = gcd_pair.managed.design
        kwargs = dict(rel_tol=0.02, seed=1996, block_size=64,
                      max_vectors=4096)
        compiled = measure_power(design, backend="compiled", **kwargs)
        other = measure_power(design, backend=backend, **kwargs)
        assert isinstance(compiled, MonteCarloPower)
        assert isinstance(other, MonteCarloPower)
        assert compiled == other
        assert compiled.samples == other.samples
        assert compiled.blocks == other.blocks
        assert compiled.ci_halfwidth == other.ci_halfwidth
        assert compiled.converged == other.converged

    def test_chosen_backend_surfaced(self, gcd_pair):
        """Fallback observability: every report records which engine ran
        it, without perturbing report equality (the field is excluded
        from comparison so parity checks above stay byte-identical)."""
        design = gcd_pair.managed.design
        for backend in ("compiled",) + ARRAY_BACKENDS:
            report = measure_power(design, n_vectors=32, backend=backend)
            assert report.chosen_backend == backend
        auto = measure_power(design, n_vectors=32, backend="auto")
        assert auto.chosen_backend == "vectorized"
        mc = measure_power(design, rel_tol=0.05, seed=7, block_size=64,
                           max_vectors=1024, backend="auto")
        assert isinstance(mc, MonteCarloPower)
        assert mc.chosen_backend == "vectorized"

    def test_monte_carlo_matrix_source(self, gcd_pair):
        """A finite matrix source drains block-wise like a dict stream."""
        design = gcd_pair.managed.design
        matrix = array_random_vectors(design.graph, 200)
        rows = [dict(zip(("a", "b"), row)) for row in matrix.tolist()]
        from_matrix = measure_power(design, vectors=matrix, rel_tol=1e-9,
                                    block_size=64, backend="vectorized")
        from_stream = measure_power(design, vectors=iter(rows),
                                    rel_tol=1e-9, block_size=64,
                                    backend="compiled")
        assert from_matrix == from_stream
        assert from_matrix.samples == 200  # ran the matrix dry

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS)
    def test_compare_designs_identical(self, gcd_pair, backend):
        compiled = compare_designs(gcd_pair.baseline.design,
                                   gcd_pair.managed.design,
                                   n_vectors=64, backend="compiled")
        other = compare_designs(gcd_pair.baseline.design,
                                gcd_pair.managed.design,
                                n_vectors=64, backend=backend)
        assert compiled == other


class TestExplore:
    def test_explore_sim_vectors_identical(self):
        points = {}
        for backend in ("compiled",) + ARRAY_BACKENDS:
            clear_explore_cache()
            config = FlowConfig(sim_backend=backend, label="parity")
            result = explore(["gcd"], [7], configs=[config], sim_vectors=48)
            point = result.points[0]
            assert point.chosen_backend == backend
            points[backend] = point.simulated_reduction_pct
        assert len(set(points.values())) == 1, points
