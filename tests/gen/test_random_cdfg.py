"""The seeded random-CDFG generator: determinism, knobs, families."""

import pytest

from repro.circuits import CIRCUITS, FAMILIES, build, register_family
from repro.gen import PRESETS, GenConfig, generate, random_cdfg
from repro.ir.graph import CDFGError
from repro.ir.ops import Op
from repro.ir.validate import validate
from repro.pipeline import graph_fingerprint


class TestDeterminism:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_same_seed_same_graph(self, preset):
        a = random_cdfg(11, preset=preset)
        b = random_cdfg(11, preset=preset)
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_different_seeds_differ(self):
        fingerprints = {graph_fingerprint(random_cdfg(seed))
                        for seed in range(8)}
        assert len(fingerprints) == 8

    def test_generate_is_pure_in_the_config(self):
        config = GenConfig(seed=3, n_ops=12, mux_density=0.4)
        assert graph_fingerprint(generate(config)) == \
            graph_fingerprint(generate(config))


class TestValidity:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("seed", [0, 1, 97])
    def test_every_graph_validates(self, preset, seed):
        graph = random_cdfg(seed, preset=preset)
        validate(graph)  # no dead ops, no cycles, arity correct
        assert graph.outputs()

    def test_reaches_the_op_target(self):
        for seed in range(10):
            graph = random_cdfg(seed, preset="medium")
            assert len(graph.operations()) >= PRESETS["medium"].n_ops


class TestKnobs:
    def test_op_mix_is_respected(self):
        only_adds = GenConfig(seed=1, n_ops=20, op_mix=(("add", 1.0),),
                              mux_density=0.0)
        graph = generate(only_adds)
        kinds = {n.op for n in graph.operations()}
        assert kinds == {Op.ADD}

    def test_mux_density_zero_means_no_conditionals(self):
        graph = generate(GenConfig(seed=2, n_ops=20, mux_density=0.0))
        assert not graph.muxes()

    def test_high_mux_density_makes_branchy_graphs(self):
        graph = generate(GenConfig(seed=2, n_ops=30, mux_density=0.9,
                                   mutex_density=1.0))
        assert len(graph.muxes()) >= 4

    def test_mutex_branches_are_private_to_one_mux_side(self):
        """With mutex_density=1 every MUX data input has exactly one
        consumer (the mux itself) — the mutually-exclusive-cone shape
        the PM pass exploits."""
        graph = generate(GenConfig(seed=5, n_ops=24, mux_density=0.6,
                                   mutex_density=1.0))
        assert graph.muxes()
        for mux in graph.muxes():
            for side in (0, 1):
                producer = mux.data_operand(side)
                node = graph.node(producer)
                if node.is_schedulable:
                    assert graph.data_succs(producer) == [mux.nid]

    def test_reuse_window_controls_depth(self):
        from repro.sched.timing import critical_path_length

        base = dict(seed=7, n_ops=24, mux_density=0.0, n_inputs=2)
        deep = generate(GenConfig(reuse_window=1, **base))
        wide = generate(GenConfig(reuse_window=None,
                                  n_inputs=8, **{k: v for k, v in base.items()
                                                 if k != "n_inputs"}))
        assert critical_path_length(deep) > critical_path_length(wide)

    def test_nesting_depth_zero_disables_conditionals(self):
        graph = generate(GenConfig(seed=3, n_ops=16, mux_density=0.9,
                                   nesting_depth=0))
        assert not graph.muxes()

    @pytest.mark.parametrize("bad", [
        dict(n_ops=0),
        dict(n_inputs=0),
        dict(branch_ops=0),
        dict(nesting_depth=-1),
        dict(reuse_window=0),
        dict(mux_density=1.5),
        dict(mutex_density=-0.1),
        dict(op_mix=(("divide", 1.0),)),
        dict(op_mix=(("add", 0.0),)),
    ])
    def test_bad_configs_rejected(self, bad):
        with pytest.raises(ValueError):
            generate(GenConfig(**bad))

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown generator preset"):
            random_cdfg(1, preset="gigantic")


class TestFamilyRegistry:
    def test_build_by_spec_matches_direct_call(self):
        assert graph_fingerprint(build("gen:branchy:9")) == \
            graph_fingerprint(random_cdfg(9, preset="branchy"))

    def test_bare_seed_selects_medium(self):
        assert graph_fingerprint(build("gen:42")) == \
            graph_fingerprint(random_cdfg(42, preset="medium"))

    def test_graph_is_named_after_its_spec(self):
        assert build("gen:small:5").name == "gen:small:5"

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="bad generator spec"):
            build("gen:small:notanumber")
        with pytest.raises(ValueError, match="unknown preset"):
            build("gen:gigantic:1")  # ValueError, so the CLI surfaces it
        with pytest.raises(KeyError, match="unknown circuit family"):
            build("nonesuch:1:2")
        with pytest.raises(KeyError, match="unknown circuit"):
            build("nonesuch")

    def test_unknown_family_error_names_lazy_families_too(self):
        with pytest.raises(KeyError, match="'gen'"):
            build("nonesuch:1:2")

    def test_register_family_validation(self):
        with pytest.raises(ValueError, match="bad family prefix"):
            register_family("a:b", lambda spec: None)
        with pytest.raises(ValueError, match="collides"):
            register_family("gcd", lambda spec: None)

    def test_custom_family_round_trip(self):
        from repro.circuits import abs_diff

        register_family("testfam", lambda spec: abs_diff())
        try:
            assert graph_fingerprint(build("testfam:x")) == \
                graph_fingerprint(abs_diff())
        finally:
            FAMILIES.pop("testfam", None)

    def test_gen_prefix_does_not_collide_with_benchmarks(self):
        assert "gen" not in CIRCUITS


class TestSynthesizable:
    """Generated graphs run through the whole flow unmodified."""

    @pytest.mark.parametrize("seed", [0, 13])
    def test_full_flow(self, seed):
        from repro.pipeline import FlowConfig, Pipeline
        from repro.sched.timing import critical_path_length

        graph = random_cdfg(seed, preset="small")
        steps = critical_path_length(graph) + 1
        result = Pipeline().run(graph, FlowConfig(n_steps=steps,
                                                  verify=True))
        assert result.design.area().total > 0
