"""Multiplexor processing order strategies (paper §III / §IV-A)."""

import pytest

from repro.core.ordering import (
    STRATEGIES,
    estimated_savings_weight,
    exhaustive_orderings,
    order_muxes,
)


class TestOutputFirst:
    def test_output_first_orders_by_distance(self, gcd_graph):
        g = gcd_graph
        order = order_muxes(g, "output_first")
        dist = g.longest_path_to_output()
        distances = [dist[m] for m in order]
        assert distances == sorted(distances)

    def test_input_first_is_reverse_metric(self, gcd_graph):
        g = gcd_graph
        dist = g.longest_path_to_output()
        order = order_muxes(g, "input_first")
        distances = [dist[m] for m in order]
        assert distances == sorted(distances, reverse=True)


class TestSavings:
    def test_savings_orders_by_gated_weight(self, vender_graph):
        g = vender_graph
        order = order_muxes(g, "savings")
        weights = [estimated_savings_weight(g, m) for m in order]
        assert weights == sorted(weights, reverse=True)

    def test_cost_mux_ranks_first_in_vender(self, vender_graph):
        """The mux gating the two multipliers has the largest potential."""
        g = vender_graph
        first = order_muxes(g, "savings")[0]
        assert g.node(first).name == "cost"

    def test_estimated_savings_on_abs_diff(self, abs_diff_graph):
        mux = abs_diff_graph.muxes()[0]
        # Two subtractors (weight 3) each skipped with probability 1/2.
        assert estimated_savings_weight(abs_diff_graph, mux.nid) == \
            pytest.approx(3.0)


class TestGivenAndErrors:
    def test_given_order_respected(self, gcd_graph):
        mux_ids = [m.nid for m in gcd_graph.muxes()]
        explicit = list(reversed(mux_ids))
        assert order_muxes(gcd_graph, "given", explicit) == explicit

    def test_given_requires_order(self, gcd_graph):
        with pytest.raises(ValueError, match="requires an explicit order"):
            order_muxes(gcd_graph, "given")

    def test_given_must_cover_all_muxes(self, gcd_graph):
        with pytest.raises(ValueError, match="misses"):
            order_muxes(gcd_graph, "given", [gcd_graph.muxes()[0].nid])

    def test_unknown_strategy(self, gcd_graph):
        with pytest.raises(ValueError, match="unknown ordering strategy"):
            order_muxes(gcd_graph, "bogus")

    def test_strategies_constant_is_complete(self, gcd_graph):
        for strategy in STRATEGIES:
            if strategy == "given":
                continue
            result = order_muxes(gcd_graph, strategy)
            assert sorted(result) == sorted(m.nid for m in gcd_graph.muxes())


class TestExhaustive:
    def test_counts_all_permutations(self, abs_diff_graph):
        perms = list(exhaustive_orderings(abs_diff_graph))
        assert len(perms) == 1  # one mux

    def test_limit_guard(self, cordic_graph):
        with pytest.raises(ValueError, match="exceed"):
            list(exhaustive_orderings(cordic_graph, limit=8))

    def test_six_muxes_factorial(self, gcd_graph):
        perms = list(exhaustive_orderings(gcd_graph, limit=6))
        assert len(perms) == 720
