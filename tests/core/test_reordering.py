"""Reordering search (§IV-A): the paper's observed order-dependence."""

import pytest

from repro.core.pm_pass import PMOptions, apply_power_management
from repro.core.reordering import (
    exhaustive_search,
    gated_weight,
    strategy_search,
)
from repro.ir.builder import GraphBuilder


def conflict_graph():
    """Two PM candidates competing for one slack step.

    cheap chain:  c1 -> small_op -> m1 (near the output)
    costly chain: c2 -> mul -> m2 (feeding m1's other flank via an add)

    Managing m1 first (output-first order) eats the slack m2 needs, losing
    the multiplier's large saving — the §IV-A phenomenon.
    """
    b = GraphBuilder("conflict")
    x, y = b.input("x"), b.input("y")
    c2 = b.gt(y, 0, name="c2")
    big = b.mul(x, y, name="big")          # weight 20, gated by m2
    m2 = b.mux(c2, big, x, name="m2")
    mid = b.add(m2, y, name="mid")
    c1 = b.gt(x, 0, name="c1")
    small = b.sub(x, y, name="small")      # weight 3, gated by m1
    m1 = b.mux(c1, small, mid, name="m1")
    b.output(m1, "out")
    return b.build()


class TestOrderDependence:
    def test_orderings_can_disagree(self):
        g = conflict_graph()
        steps = 5
        out_first = apply_power_management(g, steps,
                                           PMOptions(ordering="output_first"))
        savings = apply_power_management(g, steps,
                                         PMOptions(ordering="savings"))
        # Both select something, but the greedy-by-savings order must gate
        # at least as much weighted work.
        assert gated_weight(savings) >= gated_weight(out_first)

    def test_strategy_search_returns_best(self):
        g = conflict_graph()
        outcome = strategy_search(g, 5)
        assert outcome.best_label in outcome.scores
        best_score = outcome.scores[outcome.best_label]
        assert all(best_score >= s for s in outcome.scores.values())
        assert gated_weight(outcome.best) == best_score[0]

    def test_exhaustive_at_least_as_good_as_strategies(self):
        g = conflict_graph()
        strategies = strategy_search(g, 5)
        exhaustive = exhaustive_search(g, 5)
        assert gated_weight(exhaustive.best) >= gated_weight(strategies.best)

    def test_exhaustive_on_vender(self, vender_graph):
        outcome = exhaustive_search(vender_graph, 5, limit=6)
        heuristic = strategy_search(vender_graph, 5)
        assert gated_weight(outcome.best) >= gated_weight(heuristic.best)


class TestGatedWeight:
    def test_abs_diff_weight(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        # Two subs (weight 3) skipped with probability 1/2 each.
        assert gated_weight(result) == pytest.approx(3.0)

    def test_zero_when_nothing_managed(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 2)
        assert gated_weight(result) == 0.0
