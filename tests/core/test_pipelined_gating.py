"""Gating validity under pipelined overlap (paper §IV-B, re-derived).

With an initiation interval below the schedule length, a MUX select
register is rewritten every II steps; a guard read ``distance >= II``
steps after its driver finishes sees the *next* sample's select.  The
analysis must find exactly those guards, quantify the surviving weight,
and — in ``drop`` mode — produce an adjusted PM result downstream
stages can elaborate safely.
"""

import pytest

from repro.circuits import build
from repro.core.pipelined_gating import (
    PIPELINED_GATING_MODES,
    REASON_OVERLAP,
    analyze_pipelined_gating,
    pipelined_gated_weight,
)
from repro.opt.objective import gated_weight
from repro.pipeline import FlowConfig, Pipeline


def pipelined_context(graph, n_steps, cap=None, mode="per_sample"):
    return Pipeline().run_context(graph, FlowConfig(
        n_steps=n_steps, scheduler="pipeline", initiation_interval=cap,
        pipelined_gating=mode))


@pytest.fixture(scope="module")
def broken_case():
    """vender at II=2: deterministic, with mux 16's guards crossing a
    stage boundary (found by the II search, pinned here)."""
    graph = build("vender")
    ctx = pipelined_context(graph, 6, cap=2)
    return ctx.get("pm"), ctx.get("schedule"), ctx.get("pipelined_gating")


class TestAnalysis:
    def test_unknown_mode_rejected(self, broken_case):
        pm, schedule, _ = broken_case
        with pytest.raises(ValueError, match="mode"):
            analyze_pipelined_gating(pm, schedule, mode="hope")
        assert set(PIPELINED_GATING_MODES) == {"per_sample", "drop"}

    def test_unpipelined_schedule_rejected(self, vender_graph):
        ctx = Pipeline().run_context(vender_graph, FlowConfig(n_steps=6))
        with pytest.raises(ValueError, match="initiation_interval"):
            analyze_pipelined_gating(ctx.get("pm"), ctx.get("schedule"))

    def test_finds_the_broken_guard(self, broken_case):
        pm, schedule, report = broken_case
        assert report.initiation_interval == 2
        assert report.broken_muxes  # at least one guard crosses a stage
        assert set(report.broken_muxes) <= set(pm.selected_muxes)
        assert set(report.surviving_muxes).isdisjoint(report.broken_muxes)
        broken = [f for f in report.fates if not f.survives]
        assert broken and all(f.distance >= 2 for f in broken)
        assert all(f.copies == f.distance // 2 for f in broken)
        assert report.guard_copies == sum(f.copies for f in report.fates)

    def test_surviving_guards_are_within_one_interval(self, broken_case):
        _, _, report = broken_case
        for fate in report.fates:
            if fate.survives:
                assert fate.distance < report.initiation_interval
                assert fate.copies == 0

    def test_weight_accounting(self, broken_case):
        pm, schedule, report = broken_case
        assert report.gated_weight == pytest.approx(gated_weight(pm))
        assert report.pipelined_gated_weight < report.gated_weight
        assert report.lost_weight == pytest.approx(
            report.gated_weight - report.pipelined_gated_weight)
        assert 0 < report.lost_pct < 100
        assert str(report.initiation_interval) in report.describe()

    def test_both_modes_agree_on_surviving_weight(self, broken_case):
        pm, schedule, _ = broken_case
        per_sample = analyze_pipelined_gating(pm, schedule, "per_sample")
        drop = analyze_pipelined_gating(pm, schedule, "drop")
        assert per_sample.pipelined_gated_weight == \
            pytest.approx(drop.pipelined_gated_weight)
        assert pipelined_gated_weight(pm, schedule) == \
            pytest.approx(drop.pipelined_gated_weight)


class TestAdjustedResult:
    def test_per_sample_keeps_the_pm_result(self, broken_case):
        pm, schedule, report = broken_case
        assert report.mode == "per_sample"
        assert report.adjusted is pm

    def test_drop_strips_exactly_the_broken_guards(self, broken_case):
        pm, schedule, _ = broken_case
        report = analyze_pipelined_gating(pm, schedule, "drop")
        adjusted = report.adjusted
        assert adjusted is not pm
        broken = set(report.broken_muxes)
        for nid, guards in adjusted.gating.items():
            assert guards  # empty entries are removed outright
            assert set(guards) <= set(pm.gating[nid])
            assert all(mux not in broken for mux, _ in guards)
        # The adjusted result's own static score IS the surviving weight.
        assert gated_weight(adjusted) == \
            pytest.approx(report.pipelined_gated_weight)

    def test_drop_deselects_fully_emptied_decisions(self, broken_case):
        pm, schedule, _ = broken_case
        report = analyze_pipelined_gating(pm, schedule, "drop")
        adjusted = report.adjusted
        emptied = set(pm.selected_muxes) - set(adjusted.selected_muxes)
        for decision in adjusted.decisions:
            if decision.mux in emptied:
                assert not decision.selected
                assert decision.reason == REASON_OVERLAP
                assert not decision.gated

    def test_nothing_broken_means_nothing_dropped(self, vender_graph):
        # At II=3 every vender guard stays within one interval.
        ctx = pipelined_context(vender_graph, 6, cap=3, mode="drop")
        report = ctx.get("pipelined_gating")
        assert not report.broken_muxes
        assert report.adjusted is ctx.get("pm")
        assert report.pipelined_gated_weight == \
            pytest.approx(report.gated_weight)


class TestFlowWiring:
    def test_unpipelined_run_reports_none(self, gcd_graph):
        result = Pipeline().run(gcd_graph, FlowConfig(n_steps=7))
        assert result.pipelined_gating is None

    def test_pipelined_run_carries_the_report(self, vender_graph):
        ctx = pipelined_context(vender_graph, 6, cap=2)
        report = ctx.get("result").pipelined_gating
        assert report is ctx.get("pipelined_gating")
        assert report.initiation_interval == \
            ctx.get("schedule").initiation_interval

    @pytest.mark.parametrize("mode", PIPELINED_GATING_MODES)
    def test_both_modes_verify_end_to_end(self, vender_graph, mode):
        result = Pipeline().run(vender_graph, FlowConfig(
            n_steps=6, scheduler="pipeline", initiation_interval=2,
            pipelined_gating=mode, verify=True))
        assert result.pipelined_gating.mode == mode

    def test_mode_is_part_of_the_cache_key(self, vender_graph):
        from repro.pipeline import ArtifactCache

        pipeline = Pipeline(cache=ArtifactCache())
        base = FlowConfig(n_steps=6, scheduler="pipeline",
                          initiation_interval=2)
        pipeline.run(vender_graph, base)
        ctx = pipeline.run_context(
            vender_graph, FlowConfig(n_steps=6, scheduler="pipeline",
                                     initiation_interval=2,
                                     pipelined_gating="drop"))
        assert "schedule" not in ctx.cache_hits
        assert "power_manage" in ctx.cache_hits  # PM itself is shared


class TestMetric:
    def test_metric_registered_at_design_level(self):
        from repro.opt.objective import METRICS, NEEDS_DESIGN, Objective

        assert "pipelined_gated_weight" in METRICS
        assert Objective.parse("pipelined_gated_weight").requires \
            == NEEDS_DESIGN

    def test_equals_gated_weight_for_unpipelined_runs(self, gcd_graph):
        from repro.opt.evaluate import Evaluator
        from repro.opt.space import Candidate

        evaluator = Evaluator(gcd_graph, "pipelined_gated_weight")
        order = tuple(sorted(
            n.nid for n in gcd_graph.operations() if n.is_mux))
        _, metrics = evaluator.evaluate(Candidate(order=order, n_steps=7))
        assert metrics["pipelined_gated_weight"] == \
            pytest.approx(metrics["gated_weight"])
