"""Resource-aware and partial power management (paper §II-B fallback).

The paper: "If that is not the case [two subtractors available], we need
to assign one subtract to the first control step and another to the
second; the operation in the first control step will always be computed,
but we can still disable the one in the second control step when it is
not needed."
"""

import pytest

from repro.circuits import abs_diff, vender
from repro.core.pm_pass import (
    PMOptions,
    REASON_PARTIAL,
    REASON_SELECTED,
    apply_power_management,
)
from repro.flow import synthesize
from repro.ir.ops import ResourceClass
from repro.power.static import static_power
from repro.sched.list_scheduler import list_schedule
from repro.sched.resources import Allocation
from repro.sim.reference import evaluate
from repro.sim.simulator import RTLSimulator
from repro.sim.vectors import random_vectors

ONE_SUB = Allocation({ResourceClass.SUB: 1, ResourceClass.COMP: 1,
                      ResourceClass.MUX: 1})


class TestResourceAwareFeasibility:
    def test_full_pm_rejected_with_one_subtractor(self):
        """Both subs after the comparison need two subtractors in 3 steps;
        a resource-aware pass must reject the whole-cone selection."""
        result = apply_power_management(
            abs_diff(), 3, PMOptions(allocation=ONE_SUB))
        assert result.managed_count == 0

    def test_full_pm_accepted_with_two_subtractors(self):
        two_subs = Allocation({ResourceClass.SUB: 2, ResourceClass.COMP: 1,
                               ResourceClass.MUX: 1})
        result = apply_power_management(
            abs_diff(), 3, PMOptions(allocation=two_subs))
        assert result.managed_count == 1
        assert result.decisions[0].reason == REASON_SELECTED

    def test_slack_only_pass_unchanged_by_default(self):
        result = apply_power_management(abs_diff(), 3)
        assert result.managed_count == 1


class TestPartialSelection:
    def test_paper_one_subtractor_scenario(self):
        """Exactly one subtraction gated; the other runs in step 1."""
        result = apply_power_management(
            abs_diff(), 3, PMOptions(allocation=ONE_SUB, partial=True))
        assert result.managed_count == 1
        decision = result.decisions[0]
        assert decision.reason == REASON_PARTIAL
        assert len(decision.gated) == 1
        # The schedule really fits one subtractor.
        schedule = list_schedule(result.graph, 3, ONE_SUB)
        g = result.graph
        gated = next(iter(decision.gated))
        comp = next(n for n in g if n.name == "c")
        assert schedule.step_of(gated) >= schedule.finish_of(comp.nid)

    def test_partial_power_reduction(self):
        """One sub gated at 1/2: saves 1.5 of 11 weighted units."""
        result = apply_power_management(
            abs_diff(), 3, PMOptions(allocation=ONE_SUB, partial=True))
        assert static_power(result).reduction_pct == \
            pytest.approx(100 * 1.5 / 11)

    def test_partial_gates_subset_of_cone(self):
        result = apply_power_management(
            abs_diff(), 3, PMOptions(allocation=ONE_SUB, partial=True))
        decision = result.decisions[0]
        full_cone = decision.cones.all_shutdown_ops(result.graph)
        assert decision.gated < full_cone

    def test_partial_prefers_expensive_units(self):
        """Under a tight budget the multiplier is gated before adders."""
        graph = vender()
        tight = Allocation({ResourceClass.MUL: 1, ResourceClass.SUB: 1,
                            ResourceClass.ADD: 1, ResourceClass.COMP: 1,
                            ResourceClass.MUX: 2})
        result = apply_power_management(
            graph, 6, PMOptions(allocation=tight, partial=True))
        gated_classes = {result.graph.node(n).resource
                         for n in result.gated_ops()}
        if result.gated_ops():
            # whatever fits, a multiplier must be among the gated ops if
            # any mul was gatable at all
            cost_mux = next(n for n in result.graph.muxes()
                            if n.name == "cost")
            decision = result.decision_for(cost_mux.nid)
            if decision.selected:
                assert ResourceClass.MUL in gated_classes

    def test_partial_noop_when_full_selection_fits(self):
        a = apply_power_management(abs_diff(), 3)
        b = apply_power_management(abs_diff(), 3, PMOptions(partial=True))
        assert a.gating == b.gating

    def test_no_gating_at_two_steps_even_partial(self):
        result = apply_power_management(
            abs_diff(), 2, PMOptions(partial=True))
        assert result.managed_count == 0

    def test_fully_and_partially_selected_accessors(self):
        result = apply_power_management(
            abs_diff(), 3, PMOptions(allocation=ONE_SUB, partial=True))
        assert result.partially_selected_muxes
        assert not result.fully_selected_muxes


class TestPartialEquivalence:
    """Partial gating must not change behaviour either."""

    def test_simulated_equivalence_one_subtractor(self):
        graph = abs_diff()
        result = synthesize(graph, 3,
                            PMOptions(allocation=ONE_SUB, partial=True))
        # The min-resource search should settle on a single subtractor.
        assert result.allocation.get(ResourceClass.SUB) == 1
        vectors = random_vectors(graph, 80, seed=13)
        sim = RTLSimulator(result.design, power_management=True)
        outputs, activity = sim.run_many(vectors)
        assert outputs == [evaluate(graph, v) for v in vectors]
        # The gated sub idles about half the time under uniform inputs.
        assert 15 <= activity.total_idles() <= 65

    @pytest.mark.parametrize("name,steps", [("dealer", 4), ("vender", 5)])
    def test_partial_on_benchmarks_equivalent(self, name, steps):
        from repro.circuits import build
        graph = build(name)
        result = synthesize(graph, steps, PMOptions(partial=True))
        vectors = random_vectors(graph, 40, seed=steps)
        sim = RTLSimulator(result.design, power_management=True)
        outputs, _ = sim.run_many(vectors)
        assert outputs == [evaluate(graph, v) for v in vectors]

    def test_partial_never_saves_less_than_full(self, vender_graph):
        for steps in (5, 6):
            full = static_power(
                apply_power_management(vender_graph, steps)).reduction_pct
            part = static_power(apply_power_management(
                vender_graph, steps, PMOptions(partial=True))).reduction_pct
            assert part >= full - 1e-9
