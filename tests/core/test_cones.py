"""Multiplexor cone analysis (paper step 3)."""

import pytest

from repro.core.cones import compute_all_cones, compute_cones
from repro.ir.builder import GraphBuilder


def names_of(graph, ids):
    return {graph.node(n).name for n in ids}


class TestAbsDiff:
    def test_each_sub_exclusive_to_its_side(self, abs_diff_graph):
        g = abs_diff_graph
        mux = g.muxes()[0]
        cones = compute_cones(g, mux.nid)
        assert names_of(g, cones.shutdown[0]) == {"b_minus_a"}
        assert names_of(g, cones.shutdown[1]) == {"a_minus_b"}
        assert names_of(g, cones.control) == {"c"}

    def test_top_nodes(self, abs_diff_graph):
        g = abs_diff_graph
        mux = g.muxes()[0]
        cones = compute_cones(g, mux.nid)
        assert names_of(g, cones.top_nodes(g, 0)) == {"b_minus_a"}
        assert names_of(g, cones.top_nodes(g, 1)) == {"a_minus_b"}


class TestExclusionRules:
    def test_shared_node_excluded(self):
        """A node feeding both mux data inputs is needed either way."""
        b = GraphBuilder("shared")
        a, c = b.input("a"), b.input("c")
        cond = b.gt(a, c, name="cond")
        shared = b.add(a, c, name="shared")
        left = b.sub(shared, c, name="left")
        right = b.sub(shared, a, name="right")
        m = b.mux(cond, left, right, name="m")
        b.output(m, "out")
        g = b.build()
        cones = compute_cones(g, m.nid)
        assert "shared" not in names_of(g, cones.shutdown[0])
        assert "shared" not in names_of(g, cones.shutdown[1])
        assert "left" in names_of(g, cones.shutdown[0])

    def test_fanout_to_output_excluded(self):
        """Paper: nodes that fan out beyond the mux cannot be shut down."""
        b = GraphBuilder("fanout")
        a, c = b.input("a"), b.input("c")
        cond = b.gt(a, c, name="cond")
        left = b.add(a, c, name="left")
        m = b.mux(cond, left, a, name="m")
        b.output(m, "out")
        b.output(left, "leak")  # extra consumer
        g = b.build()
        cones = compute_cones(g, m.nid)
        assert cones.shutdown[0] == frozenset()

    def test_fanout_closure_strands_producers(self):
        """Excluding a consumer must exclude producers feeding only it."""
        b = GraphBuilder("closure")
        a, c = b.input("a"), b.input("c")
        cond = b.gt(a, c, name="cond")
        deep = b.add(a, c, name="deep")
        mid = b.sub(deep, c, name="mid")
        m = b.mux(cond, mid, a, name="m")
        b.output(m, "out")
        b.output(mid, "leak")  # mid escapes; deep feeds only mid
        g = b.build()
        cones = compute_cones(g, m.nid)
        assert cones.shutdown[0] == frozenset()

    def test_control_cone_member_excluded_from_data_cone(self):
        """Nodes computing the select cannot be shut down by it."""
        b = GraphBuilder("ctrl")
        a, c = b.input("a"), b.input("c")
        t = b.add(a, c, name="t")
        cond = b.gt(t, 0, name="cond")
        left = b.sub(t, c, name="left")
        m = b.mux(cond, left, a, name="m")
        b.output(m, "out")
        g = b.build()
        cones = compute_cones(g, m.nid)
        assert "t" in names_of(g, cones.control)
        assert "t" not in names_of(g, cones.shutdown[0])
        assert "left" in names_of(g, cones.shutdown[0])


class TestWiring:
    def test_shift_chain_is_gatable_end_to_end(self):
        b = GraphBuilder("wired")
        a, c = b.input("a"), b.input("c")
        cond = b.gt(a, c, name="cond")
        val = b.add(a, c, name="val")
        shifted = b.shr(val, 1, name="sh")
        m = b.mux(cond, shifted, a, name="m")
        b.output(m, "out")
        g = b.build()
        cones = compute_cones(g, m.nid)
        assert {"val", "sh"} <= names_of(g, cones.shutdown[0])
        assert names_of(g, cones.shutdown_ops(g, 0)) == {"val"}


class TestBenchmarks:
    def test_gcd_sub_is_gated_by_result_mux(self, gcd_graph):
        g = gcd_graph
        cones = compute_all_cones(g)
        gated_anywhere = set()
        for mc in cones.values():
            gated_anywhere |= set(mc.all_shutdown_ops(g))
        assert "diff" in names_of(g, gated_anywhere)

    def test_vender_multipliers_split_across_cost_mux(self, vender_graph):
        g = vender_graph
        cost_mux = next(n for n in g.muxes() if n.name == "cost")
        cones = compute_cones(g, cost_mux.nid)
        both = names_of(g, cones.shutdown[0]) | names_of(g, cones.shutdown[1])
        assert both == {"p2", "p3"}

    def test_non_mux_rejected(self, abs_diff_graph):
        comp = next(n for n in abs_diff_graph if n.name == "c")
        with pytest.raises(ValueError, match="not a MUX"):
            compute_cones(abs_diff_graph, comp.nid)

    def test_cordic_has_47_cone_sets(self, cordic_graph):
        assert len(compute_all_cones(cordic_graph)) == 47
