"""The paper's Figure-3 power-management scheduling pass."""

import pytest

from repro.core.pm_pass import (
    PMOptions,
    REASON_NOTHING_TO_GATE,
    REASON_NO_SLACK,
    apply_power_management,
)
from repro.sched.list_scheduler import list_schedule
from repro.sched.resources import unbounded_allocation
from repro.sched.timing import InfeasibleScheduleError, critical_path_length


class TestPaperRunningExample:
    """§II-B: |a-b| with 2 vs 3 control steps (Figs. 1 and 2)."""

    def test_two_steps_no_power_management(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 2)
        assert result.managed_count == 0
        decision = result.decisions[0]
        assert decision.reason == REASON_NO_SLACK
        assert result.graph.control_edges() == []

    def test_three_steps_mux_managed(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        assert result.managed_count == 1
        g = result.graph
        gated = {g.node(n).name for n in result.gated_ops()}
        assert gated == {"a_minus_b", "b_minus_a"}

    def test_three_step_schedule_puts_comparison_first(self, abs_diff_graph):
        """Fig. 2(b): comparison in step 1, both subtractions gated after."""
        result = apply_power_management(abs_diff_graph, 3)
        g = result.graph
        schedule = list_schedule(g, 3, unbounded_allocation(g))
        comp = next(n for n in g if n.name == "c")
        for name in ("a_minus_b", "b_minus_a"):
            sub = next(n for n in g if n.name == name)
            assert schedule.step_of(sub.nid) >= schedule.finish_of(comp.nid)

    def test_gating_sides_match_mux_semantics(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        g = result.graph
        mux = g.muxes()[0]
        by_name = {g.node(n).name: guards
                   for n, guards in result.gating.items()}
        assert by_name["b_minus_a"] == ((mux.nid, 0),)
        assert by_name["a_minus_b"] == ((mux.nid, 1),)


class TestBenchmarkSelections:
    """Regression-pins for our reconstructions (see EXPERIMENTS.md for the
    paper-vs-measured discussion)."""

    @pytest.mark.parametrize("steps,expected", [(4, 1), (5, 3), (6, 3)])
    def test_dealer(self, dealer_graph, steps, expected):
        assert apply_power_management(
            dealer_graph, steps).managed_count == expected

    @pytest.mark.parametrize("steps,expected", [(5, 2), (6, 2), (7, 2)])
    def test_gcd(self, gcd_graph, steps, expected):
        assert apply_power_management(
            gcd_graph, steps).managed_count == expected

    @pytest.mark.parametrize("steps,expected", [(5, 2), (6, 3)])
    def test_vender(self, vender_graph, steps, expected):
        assert apply_power_management(
            vender_graph, steps).managed_count == expected

    def test_cordic_at_paper_budgets(self, cordic_graph):
        assert apply_power_management(cordic_graph, 48).managed_count == 47
        assert apply_power_management(cordic_graph, 52).managed_count == 47

    def test_cordic_slack_staircase(self, cordic_graph):
        """Every extra control step lets roughly one more iteration be
        managed; at the paper's 48-step budget everything gatable is."""
        cp = critical_path_length(cordic_graph)  # 32 in our reconstruction
        counts = [apply_power_management(cordic_graph, cp + k).managed_count
                  for k in (0, 4, 8, 12, 16)]
        assert counts[0] == 0  # no slack at the critical path
        assert counts == sorted(counts)
        assert counts[-1] == 47


class TestMechanics:
    def test_input_graph_not_modified(self, abs_diff_graph):
        before = len(abs_diff_graph.control_edges())
        apply_power_management(abs_diff_graph, 3)
        assert len(abs_diff_graph.control_edges()) == before == 0

    def test_augmented_graph_stays_schedulable(self, small_circuit):
        cp = critical_path_length(small_circuit)
        for steps in (cp, cp + 1, cp + 2):
            result = apply_power_management(small_circuit, steps)
            schedule = list_schedule(result.graph, steps,
                                     unbounded_allocation(result.graph))
            schedule.verify()

    def test_below_critical_path_raises(self, dealer_graph):
        with pytest.raises(InfeasibleScheduleError):
            apply_power_management(dealer_graph, 3)

    def test_disabled_pass_is_noop(self, dealer_graph):
        result = apply_power_management(dealer_graph, 6,
                                        PMOptions(enabled=False))
        assert result.managed_count == 0
        assert result.gating == {}
        assert result.decisions == []

    def test_max_muxes_limit(self, vender_graph):
        result = apply_power_management(vender_graph, 6,
                                        PMOptions(max_muxes=1))
        assert result.managed_count == 1

    def test_every_mux_gets_a_decision(self, small_circuit):
        cp = critical_path_length(small_circuit)
        result = apply_power_management(small_circuit, cp + 1)
        assert len(result.decisions) == len(small_circuit.muxes())

    def test_const_fed_muxes_have_nothing_to_gate(self, gcd_graph):
        result = apply_power_management(gcd_graph, 7)
        done = next(n for n in gcd_graph if n.name == "done")
        assert result.decision_for(done.nid).reason == REASON_NOTHING_TO_GATE

    def test_decision_for_unknown_mux_raises(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        with pytest.raises(KeyError):
            result.decision_for(999)

    def test_gated_ops_probability_monotone_in_steps(self, vender_graph):
        """More slack can only gate more (weighted) work, never less."""
        from repro.core.reordering import gated_weight
        weights = [gated_weight(apply_power_management(vender_graph, s))
                   for s in (5, 6, 7)]
        assert weights == sorted(weights)


class TestControlEdges:
    def test_edges_source_is_select_driver(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        g = result.graph
        comp = next(n for n in g if n.name == "c")
        for src, _dst in g.control_edges():
            assert src == comp.nid

    def test_edges_target_cone_tops_only(self, vender_graph):
        result = apply_power_management(vender_graph, 6)
        g = result.graph
        for decision in result.decisions:
            if not decision.selected:
                continue
            tops = set()
            for side in (0, 1):
                tops |= decision.cones.top_nodes(g, side)
            for _src, dst in decision.added_edges:
                assert dst in tops
