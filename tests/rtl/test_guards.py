"""Guard construction: direct, transitive, folded, contradictory."""

import pytest

from repro.core.pm_pass import apply_power_management
from repro.rtl.guards import Guard, GuardTerm, all_guards, guard_of


class TestBasicGuards:
    def test_ungated_op_is_unconditional(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        g = result.graph
        comp = next(n for n in g if n.name == "c")
        guard = guard_of(result, comp.nid)
        assert guard.is_unconditional
        assert guard.literal_count == 0

    def test_gated_subs_have_one_term_each(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        g = result.graph
        comp = next(n for n in g if n.name == "c")
        for name, value in (("b_minus_a", 0), ("a_minus_b", 1)):
            node = next(n for n in g if n.name == name)
            guard = guard_of(result, node.nid)
            assert guard.terms == (GuardTerm(comp.nid, value),)

    def test_evaluate(self):
        guard = Guard(terms=(GuardTerm(1, 1), GuardTerm(2, 0)))
        assert guard.evaluate({1: 1, 2: 0})
        assert guard.evaluate({1: 5, 2: 0})   # nonzero counts as 1
        assert not guard.evaluate({1: 0, 2: 0})
        assert not guard.evaluate({1: 1, 2: 1})

    def test_never_guard(self):
        guard = Guard(never=True)
        assert not guard.evaluate({})
        assert guard.literal_count == 0
        assert not guard.is_unconditional

    def test_describe(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        g = result.graph
        sub = next(n for n in g if n.name == "a_minus_b")
        assert "c:>=1" in guard_of(result, sub.nid).describe(g)
        assert Guard().describe(g) == "always"
        assert Guard(never=True).describe(g) == "never"


class TestSharedDriver:
    def test_same_driver_terms_merge(self, gcd_graph):
        """gcd's diff is gated by two muxes with the same select signal;
        the guard must contain one term, not two."""
        result = apply_power_management(gcd_graph, 7)
        g = result.graph
        diff = next(n for n in g if n.name == "diff")
        assert len(result.gating[diff.nid]) >= 2
        guard = guard_of(result, diff.nid)
        assert len(guard.terms) == 1


class TestTransitivity:
    def test_driver_guard_conjoined(self, dealer_graph):
        """dealer's margin op is guarded by c_win, whose own mux chain is
        gated by c_bust: the margin guard must include both conditions."""
        result = apply_power_management(dealer_graph, 6)
        g = result.graph
        margin = next(n for n in g if n.name == "margin")
        guard = guard_of(result, margin.nid)
        drivers = {g.node(t.driver).name for t in guard.terms}
        assert "c_win" in drivers
        assert "c_bust" in drivers

    def test_all_guards_covers_every_op(self, vender_graph):
        result = apply_power_management(vender_graph, 6)
        guards = all_guards(result)
        assert set(guards) == {n.nid for n in result.graph.operations()}

    def test_guarded_iff_gated(self, vender_graph):
        result = apply_power_management(vender_graph, 6)
        guards = all_guards(result)
        for nid, guard in guards.items():
            if nid in result.gating:
                assert not guard.is_unconditional
            else:
                assert guard.is_unconditional
