"""Controller FSM and design assembly."""

import pytest

from repro.flow import synthesize, synthesize_pair
from repro.core.pm_pass import PMOptions


class TestController:
    def test_one_load_per_operation(self, dealer_graph):
        result = synthesize(dealer_graph, 6)
        controller = result.design.controller
        assert len(controller.loads) == len(dealer_graph.operations())

    def test_loads_fire_at_op_finish(self, dealer_graph):
        result = synthesize(dealer_graph, 6)
        design = result.design
        for load in design.controller.loads:
            node = design.graph.node(load.op)
            assert load.state == \
                design.schedule.step_of(load.op) + node.latency - 1

    def test_pm_controller_has_more_literals(self, small_circuit):
        """The paper: 'the controller for the power managed circuit is
        slightly more complex'."""
        from repro.sched.timing import critical_path_length
        steps = critical_path_length(small_circuit) + 2
        pair = synthesize_pair(small_circuit, steps)
        managed = pair.managed.design
        baseline = pair.baseline.design
        if managed.is_power_managed:
            guard_literals = sum(
                load.guard.literal_count
                for load in managed.controller.loads
            )
            assert guard_literals > 0

    def test_literal_count_formula(self, abs_diff_graph):
        result = synthesize(abs_diff_graph, 3)
        controller = result.design.controller
        expected = controller.input_loads
        expected += sum(1 + l.guard.literal_count for l in controller.loads)
        expected += len(controller.steers)
        assert controller.literal_count == expected

    def test_loads_in_state_partition(self, vender_graph):
        result = synthesize(vender_graph, 6)
        controller = result.design.controller
        total = sum(len(controller.loads_in_state(s))
                    for s in range(controller.n_states))
        assert total == len(controller.loads)


class TestDesign:
    def test_summary_mentions_kind(self, dealer_graph):
        pair = synthesize_pair(dealer_graph, 6)
        assert "PM" in pair.managed.design.summary()
        assert "baseline" in pair.baseline.design.summary()

    def test_area_breakdown_components_positive(self, vender_graph):
        design = synthesize(vender_graph, 6).design
        area = design.area()
        assert area.functional_units > 0
        assert area.registers > 0
        assert area.controller > 0
        assert area.total == area.datapath + area.controller

    def test_is_power_managed_flags(self, abs_diff_graph):
        assert synthesize(abs_diff_graph, 3).design.is_power_managed
        assert not synthesize(
            abs_diff_graph, 3, PMOptions(enabled=False)
        ).design.is_power_managed
        # Two steps: no slack, no PM even though the pass ran.
        assert not synthesize(abs_diff_graph, 2).design.is_power_managed
