"""VHDL backend structure tests (no simulator available offline)."""

import pytest

from repro.flow import synthesize, synthesize_pair
from repro.rtl.vhdl import generate_vhdl


@pytest.fixture
def dealer_vhdl(dealer_graph):
    return generate_vhdl(synthesize(dealer_graph, 6).design)


class TestStructure:
    def test_three_entities_present(self, dealer_vhdl):
        assert "entity dealer_datapath is" in dealer_vhdl
        assert "entity dealer_controller is" in dealer_vhdl
        assert "entity dealer_top is" in dealer_vhdl

    def test_ports_cover_io(self, dealer_graph, dealer_vhdl):
        for node in dealer_graph.inputs():
            assert f"{node.name.lower()} : in signed" in dealer_vhdl
        for node in dealer_graph.outputs():
            assert f"{node.name.lower()} : out signed" in dealer_vhdl

    def test_fsm_states_match_steps(self, dealer_graph):
        design = synthesize(dealer_graph, 6).design
        text = generate_vhdl(design)
        assert "type state_t is (s0, s1, s2, s3, s4, s5);" in text

    def test_units_instantiated(self, dealer_graph):
        design = synthesize(dealer_graph, 6).design
        text = generate_vhdl(design)
        for unit in design.binding.units:
            assert f"{unit.name}_proc" in text

    def test_library_headers(self, dealer_vhdl):
        assert "library ieee;" in dealer_vhdl
        assert "use ieee.numeric_std.all;" in dealer_vhdl


class TestPowerManagementMarkers:
    def test_guarded_loads_only_in_pm_design(self, dealer_graph):
        pair = synthesize_pair(dealer_graph, 6)
        managed = generate_vhdl(pair.managed.design)
        baseline = generate_vhdl(pair.baseline.design)
        assert "power management:" in managed
        assert "power management:" not in baseline

    def test_header_names_design_kind(self, dealer_graph):
        pair = synthesize_pair(dealer_graph, 6)
        assert "power-managed design" in generate_vhdl(pair.managed.design)
        assert "baseline design" in generate_vhdl(pair.baseline.design)


class TestDeterminism:
    def test_output_is_reproducible(self, vender_graph):
        a = generate_vhdl(synthesize(vender_graph, 6).design)
        b = generate_vhdl(synthesize(vender_graph, 6).design)
        assert a == b

    def test_identifier_sanitization(self):
        from repro.rtl.vhdl import _ident
        assert _ident("a-b c") == "a_b_c"
        assert _ident("1abc") == "n_1abc"
        assert _ident("OK") == "ok"
