-- vender: baseline design, 6 control steps, 8-bit datapath
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity vender_datapath is
  port (
    clk   : in std_logic;
    coins : in signed(7 downto 0);
    credit : in signed(7 downto 0);
    price : in signed(7 downto 0);
    sel : in signed(7 downto 0);
    amount : out signed(7 downto 0);
    vend : out signed(7 downto 0);
    balance : out signed(7 downto 0);
    ovf : out signed(7 downto 0);
    load  : in std_logic_vector(10 downto 0);
    steer : in std_logic_vector(31 downto 0)
  );
end entity vender_datapath;

architecture rtl of vender_datapath is
  signal r0 : signed(7 downto 0) := (others => '0');
  signal r1 : signed(7 downto 0) := (others => '0');
  signal r2 : signed(7 downto 0) := (others => '0');
  signal r3 : signed(7 downto 0) := (others => '0');
  signal r4 : signed(7 downto 0) := (others => '0');
  signal r5 : signed(7 downto 0) := (others => '0');
  signal r6 : signed(7 downto 0) := (others => '0');
  signal mul0_out : signed(7 downto 0);
  signal add0_out : signed(7 downto 0);
  signal sub0_out : signed(7 downto 0);
  signal sub1_out : signed(7 downto 0);
  signal comp0_out : signed(7 downto 0);
  signal mux0_out : signed(7 downto 0);
  signal mux1_out : signed(7 downto 0);
begin
  -- mul0: p2:*, p3:*
  mul0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- combinational: a * b
      null;  -- behaviour driven by controller microcode
    end if;
  end process mul0_proc;
  -- add0: funds:+, t2:+, balance:+
  add0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- combinational: a + b
      null;  -- behaviour driven by controller microcode
    end if;
  end process add0_proc;
  -- sub0: change:-, wrapped:-
  sub0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- combinational: a - b
      null;  -- behaviour driven by controller microcode
    end if;
  end process sub0_proc;
  -- sub1: short:-
  sub1_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- combinational: a - b
      null;  -- behaviour driven by controller microcode
    end if;
  end process sub1_proc;
  -- comp0: c_two:>, c_pay:>, c_ovf:>
  comp0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- comparator: a > b
      null;  -- behaviour driven by controller microcode
    end if;
  end process comp0_proc;
  -- mux0: account:mux, cost:mux, amount:mux, newbal:mux
  mux0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- selector: sel ? b : a
      null;  -- behaviour driven by controller microcode
    end if;
  end process mux0_proc;
  -- mux1: vend:mux, ovf:mux
  mux1_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- selector: sel ? b : a
      null;  -- behaviour driven by controller microcode
    end if;
  end process mux1_proc;
  amount <= r0;
  vend <= r2;
  balance <= r1;
  ovf <= r4;
end architecture rtl;

entity vender_controller is
  port (
    clk, rst : in std_logic;
    cond     : in std_logic_vector(15 downto 0);
    load     : out std_logic_vector(10 downto 0);
    steer    : out std_logic_vector(31 downto 0)
  );
end entity vender_controller;

architecture fsm of vender_controller is
  type state_t is (s0, s1, s2, s3, s4, s5);
  signal state : state_t := s0;
begin
  step : process (clk)
  begin
    if rising_edge(clk) then
      case state is
        when s0 =>
          load(4) <= '1';  -- c_two
          load(5) <= '1';  -- p2
          load(6) <= '1';  -- funds
          steer(0 + 2*0) <= '1';  -- add0 port 0
          steer(1 + 2*0) <= '1';  -- add0 port 1
          steer(0 + 2*0) <= '1';  -- comp0 port 0
          steer(1 + 2*0) <= '1';  -- comp0 port 1
          steer(1 + 2*0) <= '1';  -- mul0 port 1
          state <= s1;
        when s1 =>
          load(0) <= '1';  -- p3
          load(1) <= '1';  -- c_pay
          load(2) <= '1';  -- account
          load(3) <= '1';  -- t2
          steer(0 + 2*1) <= '1';  -- add0 port 0
          steer(1 + 2*1) <= '1';  -- add0 port 1
          steer(0 + 2*1) <= '1';  -- comp0 port 0
          steer(1 + 2*1) <= '1';  -- comp0 port 1
          steer(1 + 2*1) <= '1';  -- mul0 port 1
          steer(0 + 2*0) <= '1';  -- mux0 port 0
          steer(1 + 2*0) <= '1';  -- mux0 port 1
          steer(2 + 2*0) <= '1';  -- mux0 port 2
          state <= s2;
        when s2 =>
          load(0) <= '1';  -- cost
          load(2) <= '1';  -- vend
          load(3) <= '1';  -- balance
          steer(0 + 2*2) <= '1';  -- add0 port 0
          steer(1 + 2*2) <= '1';  -- add0 port 1
          steer(0 + 2*0) <= '1';  -- mux0 port 0
          steer(1 + 2*1) <= '1';  -- mux0 port 1
          steer(2 + 2*1) <= '1';  -- mux0 port 2
          steer(0 + 2*0) <= '1';  -- mux1 port 0
          steer(1 + 2*0) <= '1';  -- mux1 port 1
          steer(2 + 2*0) <= '1';  -- mux1 port 2
          state <= s3;
        when s3 =>
          load(0) <= '1';  -- change
          load(4) <= '1';  -- short
          load(5) <= '1';  -- c_ovf
          steer(0 + 2*2) <= '1';  -- comp0 port 0
          steer(1 + 2*2) <= '1';  -- comp0 port 1
          steer(0 + 2*0) <= '1';  -- sub0 port 0
          steer(1 + 2*0) <= '1';  -- sub0 port 1
          state <= s4;
        when s4 =>
          load(0) <= '1';  -- amount
          load(1) <= '1';  -- wrapped
          load(4) <= '1';  -- ovf
          steer(0 + 2*1) <= '1';  -- mux0 port 0
          steer(1 + 2*2) <= '1';  -- mux0 port 1
          steer(2 + 2*2) <= '1';  -- mux0 port 2
          steer(0 + 2*1) <= '1';  -- mux1 port 0
          steer(1 + 2*1) <= '1';  -- mux1 port 1
          steer(2 + 2*1) <= '1';  -- mux1 port 2
          steer(0 + 2*1) <= '1';  -- sub0 port 0
          steer(1 + 2*1) <= '1';  -- sub0 port 1
          state <= s5;
        when s5 =>
          load(1) <= '1';  -- newbal
          steer(0 + 2*2) <= '1';  -- mux0 port 0
          steer(1 + 2*3) <= '1';  -- mux0 port 1
          steer(2 + 2*3) <= '1';  -- mux0 port 2
          state <= s0;
      end case;
    end if;
  end process step;
end architecture fsm;

entity vender_top is
  port (
    clk, rst : in std_logic;
    coins : in signed(7 downto 0);
    credit : in signed(7 downto 0);
    price : in signed(7 downto 0);
    sel : in signed(7 downto 0);
    amount : out signed(7 downto 0);
    vend : out signed(7 downto 0);
    balance : out signed(7 downto 0);
    ovf : out signed(7 downto 0)
  );
end entity vender_top;

architecture structural of vender_top is
  signal load_bus  : std_logic_vector(10 downto 0);
  signal steer_bus : std_logic_vector(31 downto 0);
  signal cond_bus  : std_logic_vector(15 downto 0);
begin
  u_ctrl : entity work.vender_controller
    port map (clk => clk, rst => rst, cond => cond_bus,
              load => load_bus, steer => steer_bus);
  u_dp : entity work.vender_datapath
    port map (clk => clk, coins => coins, credit => credit, price => price, sel => sel, amount => amount, vend => vend, balance => balance, ovf => ovf, load => load_bus, steer => steer_bus);
end architecture structural;
