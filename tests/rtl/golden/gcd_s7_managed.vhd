-- gcd: power-managed design, 7 control steps, 8-bit datapath
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity gcd_datapath is
  port (
    clk   : in std_logic;
    a : in signed(7 downto 0);
    b : in signed(7 downto 0);
    gcd : out signed(7 downto 0);
    next_b : out signed(7 downto 0);
    done : out signed(7 downto 0);
    max : out signed(7 downto 0);
    load  : in std_logic_vector(8 downto 0);
    steer : in std_logic_vector(31 downto 0)
  );
end entity gcd_datapath;

architecture rtl of gcd_datapath is
  signal r0 : signed(7 downto 0) := (others => '0');
  signal r1 : signed(7 downto 0) := (others => '0');
  signal r2 : signed(7 downto 0) := (others => '0');
  signal r3 : signed(7 downto 0) := (others => '0');
  signal r4 : signed(7 downto 0) := (others => '0');
  signal r5 : signed(7 downto 0) := (others => '0');
  signal r6 : signed(7 downto 0) := (others => '0');
  signal sub0_out : signed(7 downto 0);
  signal comp0_out : signed(7 downto 0);
  signal mux0_out : signed(7 downto 0);
begin
  -- sub0: diff:-
  sub0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- combinational: a - b
      null;  -- behaviour driven by controller microcode
    end if;
  end process sub0_proc;
  -- comp0: c_gt:>, c_run:!=
  comp0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- comparator: a > b
      null;  -- behaviour driven by controller microcode
    end if;
  end process comp0_proc;
  -- mux0: big:mux, small:mux, done:mux, next_a:mux, next_b:mux, gcd:mux
  mux0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- selector: sel ? b : a
      null;  -- behaviour driven by controller microcode
    end if;
  end process mux0_proc;
  gcd <= r0;
  next_b <= r1;
  done <= r6;
  max <= r4;
end architecture rtl;

entity gcd_controller is
  port (
    clk, rst : in std_logic;
    cond     : in std_logic_vector(15 downto 0);
    load     : out std_logic_vector(8 downto 0);
    steer    : out std_logic_vector(31 downto 0)
  );
end entity gcd_controller;

architecture fsm of gcd_controller is
  type state_t is (s0, s1, s2, s3, s4, s5, s6);
  signal state : state_t := s0;
begin
  step : process (clk)
  begin
    if rising_edge(clk) then
      case state is
        when s0 =>
          load(2) <= '1';  -- c_gt
          state <= s1;
        when s1 =>
          load(3) <= '1';  -- c_run
          load(4) <= '1';  -- big
          steer(0 + 2*0) <= '1';  -- mux0 port 0
          steer(1 + 2*0) <= '1';  -- mux0 port 1
          steer(2 + 2*0) <= '1';  -- mux0 port 2
          state <= s2;
        when s2 =>
          load(2) <= '1';  -- small
          steer(0 + 2*0) <= '1';  -- mux0 port 0
          steer(1 + 2*1) <= '1';  -- mux0 port 1
          steer(2 + 2*1) <= '1';  -- mux0 port 2
          state <= s3;
        when s3 =>
          if cond(2 mod 16) = '1' then  -- power management: diff
            load(5) <= '1';
          end if;
          load(6) <= '1';  -- done
          steer(0 + 2*1) <= '1';  -- mux0 port 0
          steer(1 + 2*2) <= '1';  -- mux0 port 1
          steer(2 + 2*2) <= '1';  -- mux0 port 2
          state <= s4;
        when s4 =>
          if cond(2 mod 16) = '1' then  -- power management: next_a
            load(5) <= '1';
          end if;
          steer(0 + 2*1) <= '1';  -- mux0 port 0
          steer(1 + 2*1) <= '1';  -- mux0 port 1
          steer(2 + 2*3) <= '1';  -- mux0 port 2
          state <= s5;
        when s5 =>
          load(1) <= '1';  -- next_b
          steer(0 + 2*1) <= '1';  -- mux0 port 0
          steer(1 + 2*0) <= '1';  -- mux0 port 1
          steer(2 + 2*4) <= '1';  -- mux0 port 2
          state <= s6;
        when s6 =>
          load(0) <= '1';  -- gcd
          steer(0 + 2*1) <= '1';  -- mux0 port 0
          steer(1 + 2*1) <= '1';  -- mux0 port 1
          steer(2 + 2*5) <= '1';  -- mux0 port 2
          state <= s0;
      end case;
    end if;
  end process step;
end architecture fsm;

entity gcd_top is
  port (
    clk, rst : in std_logic;
    a : in signed(7 downto 0);
    b : in signed(7 downto 0);
    gcd : out signed(7 downto 0);
    next_b : out signed(7 downto 0);
    done : out signed(7 downto 0);
    max : out signed(7 downto 0)
  );
end entity gcd_top;

architecture structural of gcd_top is
  signal load_bus  : std_logic_vector(8 downto 0);
  signal steer_bus : std_logic_vector(31 downto 0);
  signal cond_bus  : std_logic_vector(15 downto 0);
begin
  u_ctrl : entity work.gcd_controller
    port map (clk => clk, rst => rst, cond => cond_bus,
              load => load_bus, steer => steer_bus);
  u_dp : entity work.gcd_datapath
    port map (clk => clk, a => a, b => b, gcd => gcd, next_b => next_b, done => done, max => max, load => load_bus, steer => steer_bus);
end architecture structural;
