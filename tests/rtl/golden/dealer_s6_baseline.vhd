-- dealer: baseline design, 6 control steps, 8-bit datapath
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity dealer_datapath is
  port (
    clk   : in std_logic;
    p : in signed(7 downto 0);
    d : in signed(7 downto 0);
    c : in signed(7 downto 0);
    payout : out signed(7 downto 0);
    total : out signed(7 downto 0);
    dealer_total : out signed(7 downto 0);
    load  : in std_logic_vector(8 downto 0);
    steer : in std_logic_vector(31 downto 0)
  );
end entity dealer_datapath;

architecture rtl of dealer_datapath is
  signal r0 : signed(7 downto 0) := (others => '0');
  signal r1 : signed(7 downto 0) := (others => '0');
  signal r2 : signed(7 downto 0) := (others => '0');
  signal r3 : signed(7 downto 0) := (others => '0');
  signal r4 : signed(7 downto 0) := (others => '0');
  signal r5 : signed(7 downto 0) := (others => '0');
  signal add0_out : signed(7 downto 0);
  signal sub0_out : signed(7 downto 0);
  signal comp0_out : signed(7 downto 0);
  signal mux0_out : signed(7 downto 0);
begin
  -- add0: hit:+, total:+
  add0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- combinational: a + b
      null;  -- behaviour driven by controller microcode
    end if;
  end process add0_proc;
  -- sub0: margin:-
  sub0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- combinational: a - b
      null;  -- behaviour driven by controller microcode
    end if;
  end process sub0_proc;
  -- comp0: c_hi:>, c_win:>, c_bust:>
  comp0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- comparator: a > b
      null;  -- behaviour driven by controller microcode
    end if;
  end process comp0_proc;
  -- mux0: dealer_final:mux, payout:mux, final:mux
  mux0_proc : process (clk)
  begin
    if rising_edge(clk) then
      -- selector: sel ? b : a
      null;  -- behaviour driven by controller microcode
    end if;
  end process mux0_proc;
  payout <= r0;
  total <= r1;
  dealer_total <= r2;
end architecture rtl;

entity dealer_controller is
  port (
    clk, rst : in std_logic;
    cond     : in std_logic_vector(15 downto 0);
    load     : out std_logic_vector(8 downto 0);
    steer    : out std_logic_vector(31 downto 0)
  );
end entity dealer_controller;

architecture fsm of dealer_controller is
  type state_t is (s0, s1, s2, s3, s4, s5);
  signal state : state_t := s0;
begin
  step : process (clk)
  begin
    if rising_edge(clk) then
      case state is
        when s0 =>
          load(3) <= '1';  -- c_hi
          load(4) <= '1';  -- hit
          load(5) <= '1';  -- margin
          steer(0 + 2*0) <= '1';  -- add0 port 0
          steer(0 + 2*0) <= '1';  -- comp0 port 0
          steer(1 + 2*0) <= '1';  -- comp0 port 1
          state <= s1;
        when s1 =>
          load(1) <= '1';  -- total
          load(2) <= '1';  -- dealer_final
          load(3) <= '1';  -- c_win
          steer(0 + 2*1) <= '1';  -- add0 port 0
          steer(0 + 2*1) <= '1';  -- comp0 port 0
          steer(1 + 2*1) <= '1';  -- comp0 port 1
          steer(0 + 2*0) <= '1';  -- mux0 port 0
          steer(1 + 2*0) <= '1';  -- mux0 port 1
          steer(2 + 2*0) <= '1';  -- mux0 port 2
          state <= s2;
        when s2 =>
          load(0) <= '1';  -- c_bust
          load(3) <= '1';  -- payout
          steer(0 + 2*1) <= '1';  -- comp0 port 0
          steer(1 + 2*2) <= '1';  -- comp0 port 1
          steer(0 + 2*1) <= '1';  -- mux0 port 0
          steer(1 + 2*1) <= '1';  -- mux0 port 1
          steer(2 + 2*1) <= '1';  -- mux0 port 2
          state <= s3;
        when s3 =>
          load(0) <= '1';  -- final
          steer(0 + 2*2) <= '1';  -- mux0 port 0
          steer(1 + 2*2) <= '1';  -- mux0 port 1
          steer(2 + 2*2) <= '1';  -- mux0 port 2
          state <= s4;
        when s4 =>
          state <= s5;
        when s5 =>
          state <= s0;
      end case;
    end if;
  end process step;
end architecture fsm;

entity dealer_top is
  port (
    clk, rst : in std_logic;
    p : in signed(7 downto 0);
    d : in signed(7 downto 0);
    c : in signed(7 downto 0);
    payout : out signed(7 downto 0);
    total : out signed(7 downto 0);
    dealer_total : out signed(7 downto 0)
  );
end entity dealer_top;

architecture structural of dealer_top is
  signal load_bus  : std_logic_vector(8 downto 0);
  signal steer_bus : std_logic_vector(31 downto 0);
  signal cond_bus  : std_logic_vector(15 downto 0);
begin
  u_ctrl : entity work.dealer_controller
    port map (clk => clk, rst => rst, cond => cond_bus,
              load => load_bus, steer => steer_bus);
  u_dp : entity work.dealer_datapath
    port map (clk => clk, p => p, d => d, c => c, payout => payout, total => total, dealer_total => dealer_total, load => load_bus, steer => steer_bus);
end architecture structural;
