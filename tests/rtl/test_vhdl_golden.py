"""Golden VHDL snapshot regression for the paper benchmark suite.

Every Table III synthesis point (baseline and power-managed) must emit
byte-identical VHDL to the pinned snapshot under ``tests/rtl/golden/``.
A failure means the RTL emission changed: if intended, regenerate with

    PYTHONPATH=src python tests/rtl/update_golden.py

and commit the reviewed diff (see that script's docstring).
"""

import pytest

from tests.rtl.update_golden import (
    GOLDEN_DIR,
    SNAPSHOT_POINTS,
    generate_snapshot,
    snapshot_name,
)

POINTS = [(circuit, steps, variant)
          for circuit, steps in SNAPSHOT_POINTS
          for variant in ("baseline", "managed")]


@pytest.mark.parametrize("circuit,steps,variant", POINTS)
def test_vhdl_matches_golden_snapshot(circuit, steps, variant):
    path = GOLDEN_DIR / snapshot_name(circuit, steps, variant)
    assert path.exists(), (
        f"missing golden snapshot {path.name}; run "
        f"'PYTHONPATH=src python tests/rtl/update_golden.py'")
    generated = generate_snapshot(circuit, steps, variant)
    golden = path.read_text()
    assert generated == golden, (
        f"VHDL for {circuit}@{steps} ({variant}) diverged from "
        f"{path.name}; if the emission change is intended, regenerate "
        f"the snapshots (see tests/rtl/update_golden.py) and review the "
        f"diff")


def test_managed_and_baseline_snapshots_differ():
    """Sanity: power management visibly changes the emitted RTL."""
    circuit, steps = SNAPSHOT_POINTS[0]
    baseline = (GOLDEN_DIR / snapshot_name(circuit, steps,
                                           "baseline")).read_text()
    managed = (GOLDEN_DIR / snapshot_name(circuit, steps,
                                          "managed")).read_text()
    assert baseline != managed
