"""Golden VHDL snapshot helpers + regeneration script.

The snapshots pin ``rtl/vhdl.py`` output for the paper benchmark suite
at the Table III budgets (baseline and power-managed designs).  When an
*intended* RTL-emission change lands, regenerate them with::

    PYTHONPATH=src python tests/rtl/update_golden.py

then review the diff like any other code change — the point of the
goldens is that VHDL churn is always a conscious decision.
"""

from __future__ import annotations

import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (circuit, control steps) — the paper's Table III synthesis points.
SNAPSHOT_POINTS = (("dealer", 6), ("gcd", 7), ("vender", 6))


def snapshot_name(circuit: str, steps: int, variant: str) -> str:
    return f"{circuit}_s{steps}_{variant}.vhd"


def generate_snapshot(circuit: str, steps: int, variant: str) -> str:
    """The VHDL text a snapshot file pins (variant: baseline|managed)."""
    from repro.circuits import build
    from repro.pipeline import FlowConfig, run_pair
    from repro.rtl.vhdl import generate_vhdl

    pair = run_pair(build(circuit), FlowConfig(n_steps=steps))
    design = pair.managed.design if variant == "managed" \
        else pair.baseline.design
    return generate_vhdl(design)


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for circuit, steps in SNAPSHOT_POINTS:
        for variant in ("baseline", "managed"):
            path = GOLDEN_DIR / snapshot_name(circuit, steps, variant)
            path.write_text(generate_snapshot(circuit, steps, variant))
            print(f"wrote {path} ({len(path.read_text().splitlines())} "
                  f"lines)")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    sys.exit(main())
