"""Minimum-resource search under a latency constraint."""

import itertools

import pytest

from repro.ir.ops import ResourceClass
from repro.sched.list_scheduler import ListSchedulingFailure, list_schedule
from repro.sched.minimize import minimize_resources
from repro.sched.resources import Allocation, unbounded_allocation
from repro.sched.timing import InfeasibleScheduleError, critical_path_length


class TestKnownCases:
    def test_abs_diff_two_steps_needs_two_subs(self, abs_diff_graph):
        """Paper §II-B: with 2 control steps we need two subtractors."""
        result = minimize_resources(abs_diff_graph, 2)
        assert result.allocation.get(ResourceClass.SUB) == 2

    def test_abs_diff_three_steps_one_sub(self, abs_diff_graph):
        """Paper §II-B / Fig. 2(a): with 3 steps one subtractor suffices."""
        result = minimize_resources(abs_diff_graph, 3)
        assert result.allocation.get(ResourceClass.SUB) == 1

    def test_schedule_is_valid(self, small_circuit):
        cp = critical_path_length(small_circuit)
        result = minimize_resources(small_circuit, cp + 1)
        result.schedule.verify(result.allocation)

    def test_infeasible_budget_raises(self, dealer_graph):
        with pytest.raises(InfeasibleScheduleError):
            minimize_resources(dealer_graph, 2)


class TestOptimality:
    @pytest.mark.parametrize("steps", [2, 3, 4])
    def test_matches_exhaustive_on_abs_diff(self, abs_diff_graph, steps):
        found = minimize_resources(abs_diff_graph, steps).allocation
        best = _exhaustive_min(abs_diff_graph, steps)
        assert found.cost() == best.cost()

    @pytest.mark.parametrize("steps", [4, 5, 6])
    def test_matches_exhaustive_on_dealer(self, dealer_graph, steps):
        found = minimize_resources(dealer_graph, steps).allocation
        best = _exhaustive_min(dealer_graph, steps)
        assert found.cost() == best.cost()

    def test_never_exceeds_one_unit_per_op(self, small_circuit):
        cp = critical_path_length(small_circuit)
        ceiling = unbounded_allocation(small_circuit)
        for steps in (cp, cp + 2):
            allocation = minimize_resources(small_circuit, steps).allocation
            assert ceiling.dominates(allocation)

    def test_more_steps_never_cost_more(self, small_circuit):
        cp = critical_path_length(small_circuit)
        costs = [minimize_resources(small_circuit, cp + k).allocation.cost()
                 for k in range(3)]
        assert costs == sorted(costs, reverse=True)


def _exhaustive_min(graph, n_steps) -> Allocation:
    """Brute-force the cheapest allocation that schedules (small graphs)."""
    ceiling = unbounded_allocation(graph)
    classes = sorted(ceiling.counts, key=lambda c: c.value)
    ranges = [range(1, ceiling.get(c) + 1) for c in classes]
    best: Allocation | None = None
    for combo in itertools.product(*ranges):
        allocation = Allocation(dict(zip(classes, combo)))
        if best is not None and allocation.cost() >= best.cost():
            continue
        try:
            list_schedule(graph, n_steps, allocation)
        except (ListSchedulingFailure, InfeasibleScheduleError):
            continue
        best = allocation
    assert best is not None
    return best
