"""Schedule object: verification, resource usage, reporting."""

import pytest

from repro.ir.ops import ResourceClass
from repro.sched.list_scheduler import list_schedule
from repro.sched.resources import (
    Allocation,
    lower_bound_allocation,
    single_unit_allocation,
    unbounded_allocation,
)
from repro.sched.schedule import Schedule, ScheduleError


class TestVerify:
    def test_missing_node_detected(self, abs_diff_graph):
        schedule = Schedule(graph=abs_diff_graph, n_steps=3, start={})
        with pytest.raises(ScheduleError, match="unscheduled"):
            schedule.verify()

    def test_precedence_violation_detected(self, chain_graph):
        g = chain_graph
        start = {n.nid: 0 for n in g}  # sub at 0 violates add->sub
        schedule = Schedule(graph=g, n_steps=2, start=start)
        with pytest.raises(ScheduleError, match="precedence"):
            schedule.verify()

    def test_bounds_violation_detected(self, chain_graph):
        g = chain_graph
        schedule = list_schedule(g, 2, unbounded_allocation(g))
        schedule.n_steps = 1
        with pytest.raises(ScheduleError, match="exceeds"):
            schedule.verify()

    def test_resource_overflow_detected(self, abs_diff_graph):
        schedule = list_schedule(abs_diff_graph, 2,
                                 unbounded_allocation(abs_diff_graph))
        with pytest.raises(ScheduleError, match="overflow"):
            schedule.verify(Allocation({ResourceClass.SUB: 1,
                                        ResourceClass.COMP: 1,
                                        ResourceClass.MUX: 1}))

    def test_step_of_unknown_node(self, abs_diff_graph):
        schedule = Schedule(graph=abs_diff_graph, n_steps=3, start={})
        with pytest.raises(ScheduleError, match="not scheduled"):
            schedule.step_of(0)


class TestQueries:
    def test_ops_in_step(self, abs_diff_graph):
        schedule = list_schedule(abs_diff_graph, 2,
                                 unbounded_allocation(abs_diff_graph))
        step0 = {abs_diff_graph.node(n).name
                 for n in schedule.ops_in_step(0)}
        assert step0 == {"c", "a_minus_b", "b_minus_a"}
        step1 = {abs_diff_graph.node(n).name
                 for n in schedule.ops_in_step(1)}
        assert step1 == {"abs"}

    def test_resource_usage(self, abs_diff_graph):
        schedule = list_schedule(abs_diff_graph, 2,
                                 unbounded_allocation(abs_diff_graph))
        usage = schedule.resource_usage()
        assert usage.get(ResourceClass.SUB) == 2
        assert usage.get(ResourceClass.COMP) == 1

    def test_table_mentions_every_step(self, abs_diff_graph):
        schedule = list_schedule(abs_diff_graph, 3,
                                 unbounded_allocation(abs_diff_graph))
        text = schedule.table()
        assert "step 1" in text and "step 3" in text
        assert "abs" in text


class TestAllocationModel:
    def test_cost_uses_paper_weights(self):
        a = Allocation({ResourceClass.MUL: 1, ResourceClass.ADD: 2})
        assert a.cost() == 20 + 6

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Allocation({ResourceClass.ADD: -1})

    def test_with_extra(self):
        a = Allocation({ResourceClass.ADD: 1})
        b = a.with_extra(ResourceClass.ADD)
        assert b.get(ResourceClass.ADD) == 2
        assert a.get(ResourceClass.ADD) == 1  # immutable

    def test_dominates(self):
        big = Allocation({ResourceClass.ADD: 2, ResourceClass.SUB: 1})
        small = Allocation({ResourceClass.ADD: 1})
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_helpers(self, dealer_graph):
        unbounded = unbounded_allocation(dealer_graph)
        single = single_unit_allocation(dealer_graph)
        lb = lower_bound_allocation(dealer_graph, 4)
        assert unbounded.get(ResourceClass.COMP) == 3
        assert single.get(ResourceClass.COMP) == 1
        assert lb.get(ResourceClass.COMP) >= 1
        assert unbounded.dominates(lb)
        assert lb.dominates(single) or lb.cost() >= single.cost()

    def test_as_dict_and_str(self):
        a = Allocation({ResourceClass.ADD: 2})
        assert a.as_dict() == {"+": 2}
        assert "+:2" in str(a)
