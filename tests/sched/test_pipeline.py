"""Functional pipelining (paper §IV-B)."""

import pytest

from repro.sched.pipeline import (
    PipelineSpec,
    pipelined_minimize,
    require_feasible,
    slack_gained,
)
from repro.sched.timing import critical_path_length


class TestPipelineSpec:
    def test_ii_is_ceiling_division(self):
        assert PipelineSpec(n_steps=6, n_stages=2).initiation_interval == 3
        assert PipelineSpec(n_steps=7, n_stages=2).initiation_interval == 4
        assert PipelineSpec(n_steps=6, n_stages=1).initiation_interval == 6

    def test_effective_steps_matches_paper_wording(self):
        """Paper: two-stage pipeline halves effective steps per sample."""
        spec = PipelineSpec(n_steps=8, n_stages=2)
        assert spec.effective_steps_per_sample == 4

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            PipelineSpec(n_steps=4, n_stages=0)
        with pytest.raises(ValueError):
            PipelineSpec(n_steps=1, n_stages=2)


class TestPipelinedSynthesis:
    def test_pipelined_schedule_verifies(self, dealer_graph):
        spec = PipelineSpec(n_steps=6, n_stages=2)
        result = pipelined_minimize(dealer_graph, spec)
        result.schedule.verify(result.allocation)
        assert result.schedule.initiation_interval == 3

    def test_pipelining_may_need_more_units(self, vender_graph):
        """Paper: pipelining 'may lead to some increase in the number of
        registers and execution units'."""
        flat = pipelined_minimize(vender_graph,
                                  PipelineSpec(n_steps=6, n_stages=1))
        piped = pipelined_minimize(vender_graph,
                                   PipelineSpec(n_steps=6, n_stages=2))
        assert piped.allocation.cost() >= flat.allocation.cost()

    def test_slack_gained(self, dealer_graph):
        cp = critical_path_length(dealer_graph)
        spec = PipelineSpec(n_steps=cp + 4, n_stages=2)
        assert slack_gained(dealer_graph, spec) == 4


class TestFeasibilityValidation:
    """Issue 10 satellite: a spec too short for the graph fails at the
    spec, with an error naming the critical path — not deep inside the
    list scheduler, and never as a negative slack."""

    def test_require_feasible_returns_critical_path(self, dealer_graph):
        cp = critical_path_length(dealer_graph)
        assert require_feasible(
            dealer_graph, PipelineSpec(n_steps=cp, n_stages=2)) == cp

    def test_too_few_steps_names_the_critical_path(self, dealer_graph):
        cp = critical_path_length(dealer_graph)
        spec = PipelineSpec(n_steps=cp - 1, n_stages=2)
        with pytest.raises(ValueError,
                           match=rf"critical path needs {cp} control steps"):
            require_feasible(dealer_graph, spec)

    def test_slack_gained_never_goes_negative(self, vender_graph):
        cp = critical_path_length(vender_graph)
        spec = PipelineSpec(n_steps=cp - 1, n_stages=1)
        with pytest.raises(ValueError, match="critical path"):
            slack_gained(vender_graph, spec)

    def test_pipelined_minimize_rejects_infeasible_spec(self, gcd_graph):
        cp = critical_path_length(gcd_graph)
        spec = PipelineSpec(n_steps=cp - 1, n_stages=2)
        with pytest.raises(ValueError, match=str(cp)):
            pipelined_minimize(gcd_graph, spec)
        with pytest.raises(ValueError, match=gcd_graph.name):
            pipelined_minimize(gcd_graph, spec)
