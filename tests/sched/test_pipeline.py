"""Functional pipelining (paper §IV-B)."""

import pytest

from repro.sched.pipeline import PipelineSpec, pipelined_minimize, slack_gained
from repro.sched.timing import critical_path_length


class TestPipelineSpec:
    def test_ii_is_ceiling_division(self):
        assert PipelineSpec(n_steps=6, n_stages=2).initiation_interval == 3
        assert PipelineSpec(n_steps=7, n_stages=2).initiation_interval == 4
        assert PipelineSpec(n_steps=6, n_stages=1).initiation_interval == 6

    def test_effective_steps_matches_paper_wording(self):
        """Paper: two-stage pipeline halves effective steps per sample."""
        spec = PipelineSpec(n_steps=8, n_stages=2)
        assert spec.effective_steps_per_sample == 4

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            PipelineSpec(n_steps=4, n_stages=0)
        with pytest.raises(ValueError):
            PipelineSpec(n_steps=1, n_stages=2)


class TestPipelinedSynthesis:
    def test_pipelined_schedule_verifies(self, dealer_graph):
        spec = PipelineSpec(n_steps=6, n_stages=2)
        result = pipelined_minimize(dealer_graph, spec)
        result.schedule.verify(result.allocation)
        assert result.schedule.initiation_interval == 3

    def test_pipelining_may_need_more_units(self, vender_graph):
        """Paper: pipelining 'may lead to some increase in the number of
        registers and execution units'."""
        flat = pipelined_minimize(vender_graph,
                                  PipelineSpec(n_steps=6, n_stages=1))
        piped = pipelined_minimize(vender_graph,
                                   PipelineSpec(n_steps=6, n_stages=2))
        assert piped.allocation.cost() >= flat.allocation.cost()

    def test_slack_gained(self, dealer_graph):
        cp = critical_path_length(dealer_graph)
        spec = PipelineSpec(n_steps=cp + 4, n_stages=2)
        assert slack_gained(dealer_graph, spec) == 4
