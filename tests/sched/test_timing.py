"""ASAP/ALAP timing analysis."""

import pytest

from repro.sched.timing import (
    InfeasibleScheduleError,
    TimingFrame,
    alap_times,
    asap_times,
    critical_path_length,
    try_timing,
)


class TestASAP:
    def test_abs_diff(self, abs_diff_graph):
        g = abs_diff_graph
        asap = asap_times(g)
        by_name = {g.node(n).name: asap[n] for n in asap}
        assert by_name["a"] == 0
        assert by_name["c"] == 0
        assert by_name["a_minus_b"] == 0
        assert by_name["abs"] == 1  # after the 1-latency subs/comp

    def test_chain(self, chain_graph):
        g = chain_graph
        asap = asap_times(g)
        by_name = {g.node(n).name: asap[n] for n in asap}
        assert by_name["s"] == 0
        assert by_name["d"] == 1

    def test_control_edges_tighten_asap(self, abs_diff_graph):
        g = abs_diff_graph.copy()
        comp = next(n for n in g if n.name == "c")
        sub = next(n for n in g if n.name == "a_minus_b")
        g.add_control_edge(comp.nid, sub.nid)
        asap = asap_times(g)
        assert asap[sub.nid] == 1  # must wait for the comparison


class TestCriticalPath:
    def test_paper_table1_critical_paths(self, dealer_graph, gcd_graph,
                                         vender_graph):
        assert critical_path_length(dealer_graph) == 4
        assert critical_path_length(gcd_graph) == 5
        assert critical_path_length(vender_graph) == 5

    def test_abs_diff_needs_two_steps(self, abs_diff_graph):
        assert critical_path_length(abs_diff_graph) == 2

    def test_empty_graph(self):
        from repro.ir.graph import CDFG
        assert critical_path_length(CDFG("empty")) == 0


class TestALAP:
    def test_alap_at_critical_path(self, abs_diff_graph):
        g = abs_diff_graph
        alap = alap_times(g, 2)
        by_name = {g.node(n).name: alap[n] for n in alap}
        assert by_name["abs"] == 1
        assert by_name["a_minus_b"] == 0  # forced

    def test_alap_with_slack(self, abs_diff_graph):
        g = abs_diff_graph
        alap = alap_times(g, 3)
        by_name = {g.node(n).name: alap[n] for n in alap}
        assert by_name["abs"] == 2
        assert by_name["a_minus_b"] == 1

    def test_infeasible_budget_raises(self, abs_diff_graph):
        with pytest.raises(InfeasibleScheduleError):
            alap_times(abs_diff_graph, 1)


class TestTimingFrame:
    def test_mobility(self, abs_diff_graph):
        g = abs_diff_graph
        frame = TimingFrame.compute(g, 3)
        sub = next(n for n in g if n.name == "a_minus_b")
        assert frame.mobility(sub.nid) == 1
        frame2 = TimingFrame.compute(g, 2)
        assert frame2.mobility(sub.nid) == 0

    def test_asap_never_exceeds_alap(self, small_circuit):
        cp = critical_path_length(small_circuit)
        frame = TimingFrame.compute(small_circuit, cp)
        assert frame.is_feasible()

    def test_try_timing_returns_none_when_infeasible(self, abs_diff_graph):
        assert try_timing(abs_diff_graph, 1) is None
        assert try_timing(abs_diff_graph, 2) is not None

    def test_compute_raises_below_critical_path(self, dealer_graph):
        with pytest.raises(InfeasibleScheduleError):
            TimingFrame.compute(dealer_graph, 3)
