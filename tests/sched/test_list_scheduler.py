"""Resource-constrained list scheduling."""

import pytest

from repro.ir.ops import ResourceClass
from repro.sched.list_scheduler import ListSchedulingFailure, list_schedule
from repro.sched.resources import Allocation, unbounded_allocation
from repro.sched.timing import InfeasibleScheduleError, critical_path_length


def alloc(**kwargs):
    mapping = {"mux": ResourceClass.MUX, "comp": ResourceClass.COMP,
               "add": ResourceClass.ADD, "sub": ResourceClass.SUB,
               "mul": ResourceClass.MUL}
    return Allocation({mapping[k]: v for k, v in kwargs.items()})


class TestBasics:
    def test_unbounded_achieves_critical_path(self, small_circuit):
        cp = critical_path_length(small_circuit)
        schedule = list_schedule(small_circuit, cp,
                                 unbounded_allocation(small_circuit))
        schedule.verify(unbounded_allocation(small_circuit))
        assert schedule.n_steps == cp

    def test_every_node_scheduled(self, dealer_graph):
        schedule = list_schedule(dealer_graph, 4,
                                 unbounded_allocation(dealer_graph))
        for node in dealer_graph:
            assert node.nid in schedule.start

    def test_zero_latency_nodes_at_availability(self, abs_diff_graph):
        schedule = list_schedule(abs_diff_graph, 2,
                                 unbounded_allocation(abs_diff_graph))
        for node in abs_diff_graph.inputs():
            assert schedule.step_of(node.nid) == 0
        out = abs_diff_graph.outputs()[0]
        assert schedule.step_of(out.nid) == 2  # after the mux finishes


class TestResourceLimits:
    def test_abs_diff_two_steps_needs_two_subs(self, abs_diff_graph):
        with pytest.raises(ListSchedulingFailure) as err:
            list_schedule(abs_diff_graph, 2, alloc(sub=1, comp=1, mux=1))
        assert err.value.bottleneck is ResourceClass.SUB

    def test_abs_diff_three_steps_single_sub(self, abs_diff_graph):
        schedule = list_schedule(abs_diff_graph, 3,
                                 alloc(sub=1, comp=1, mux=1))
        usage = schedule.resource_usage()
        assert usage.get(ResourceClass.SUB) == 1

    def test_paper_fig1_two_step_schedule_is_unique(self, abs_diff_graph):
        """Fig. 1: with 2 steps, comp and both subs all land in step 1."""
        schedule = list_schedule(abs_diff_graph, 2,
                                 alloc(sub=2, comp=1, mux=1))
        g = abs_diff_graph
        steps = {g.node(n).name: schedule.step_of(n)
                 for n in schedule.start if g.node(n).is_schedulable}
        assert steps == {"c": 0, "b_minus_a": 0, "a_minus_b": 0, "abs": 1}

    def test_infeasible_steps_raise_timing_error(self, abs_diff_graph):
        with pytest.raises(InfeasibleScheduleError):
            list_schedule(abs_diff_graph, 1,
                          unbounded_allocation(abs_diff_graph))


class TestControlEdges:
    def test_schedule_honours_control_edges(self, abs_diff_graph):
        g = abs_diff_graph.copy()
        comp = next(n for n in g if n.name == "c")
        for name in ("a_minus_b", "b_minus_a"):
            sub = next(n for n in g if n.name == name)
            g.add_control_edge(comp.nid, sub.nid)
        schedule = list_schedule(g, 3, unbounded_allocation(g))
        for name in ("a_minus_b", "b_minus_a"):
            sub = next(n for n in g if n.name == name)
            assert schedule.step_of(sub.nid) >= \
                schedule.finish_of(comp.nid)


class TestPipelining:
    def test_modulo_resource_accounting(self, chain_graph):
        # add at step 0, sub at step 1; with II=1 both classes collide
        # across overlapped samples only within their own class.
        schedule = list_schedule(chain_graph, 2,
                                 alloc(add=1, sub=1),
                                 initiation_interval=1)
        usage = schedule.resource_usage()
        assert usage.get(ResourceClass.ADD) == 1
        assert usage.get(ResourceClass.SUB) == 1

    def test_pipelined_conflict_detected(self, abs_diff_graph):
        # II=1 means each unit is reused every cycle: two subs on one unit
        # in different steps still collide modulo 1.
        with pytest.raises(ListSchedulingFailure):
            list_schedule(abs_diff_graph, 3, alloc(sub=1, comp=1, mux=1),
                          initiation_interval=1)

    def test_bad_ii_rejected(self, chain_graph):
        with pytest.raises(ValueError, match="initiation interval"):
            list_schedule(chain_graph, 2, alloc(add=1, sub=1),
                          initiation_interval=0)


class TestDeterminism:
    def test_same_input_same_schedule(self, vender_graph):
        a = list_schedule(vender_graph, 6, unbounded_allocation(vender_graph))
        b = list_schedule(vender_graph, 6, unbounded_allocation(vender_graph))
        assert a.start == b.start
