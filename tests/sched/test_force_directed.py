"""Force-directed scheduling (Paulin-Knight)."""

import pytest

from repro.ir.ops import ResourceClass
from repro.sched.force_directed import force_directed_schedule
from repro.sched.minimize import minimize_resources
from repro.sched.timing import InfeasibleScheduleError, critical_path_length


class TestValidity:
    def test_schedule_verifies(self, small_circuit):
        cp = critical_path_length(small_circuit)
        for steps in (cp, cp + 1, cp + 2):
            schedule = force_directed_schedule(small_circuit, steps)
            schedule.verify()

    def test_infeasible_raises(self, abs_diff_graph):
        with pytest.raises(InfeasibleScheduleError):
            force_directed_schedule(abs_diff_graph, 1)

    def test_deterministic(self, vender_graph):
        a = force_directed_schedule(vender_graph, 6)
        b = force_directed_schedule(vender_graph, 6)
        assert a.start == b.start


class TestBalancing:
    def test_spreads_subs_with_slack(self, abs_diff_graph):
        """With 3 steps FDS should not pile both subtractions into one step."""
        schedule = force_directed_schedule(abs_diff_graph, 3)
        usage = schedule.resource_usage()
        assert usage.get(ResourceClass.SUB) == 1

    def test_comparable_to_list_scheduler(self, small_circuit):
        """FDS peak usage should be close to the min-resource search
        (within 1 unit per class on these small graphs)."""
        cp = critical_path_length(small_circuit)
        fds = force_directed_schedule(small_circuit, cp + 2).resource_usage()
        best = minimize_resources(small_circuit, cp + 2).allocation
        for cls in fds.counts:
            assert fds.get(cls) <= best.get(cls) + 1

    def test_respects_control_edges(self, abs_diff_graph):
        g = abs_diff_graph.copy()
        comp = next(n for n in g if n.name == "c")
        sub = next(n for n in g if n.name == "a_minus_b")
        g.add_control_edge(comp.nid, sub.nid)
        schedule = force_directed_schedule(g, 3)
        assert schedule.step_of(sub.nid) >= schedule.finish_of(comp.nid)


class TestIncrementalDistribution:
    def test_matches_reference_rebuild(self, vender_graph):
        """The incrementally maintained distribution graph equals the
        from-scratch reference after any sequence of window updates."""
        from repro.sched.force_directed import (
            _DistributionGraph,
            _distribution,
            _windows,
        )
        from repro.sched.timing import alap_times, asap_times

        graph = vender_graph
        base_asap = asap_times(graph)
        base_alap = alap_times(graph, 6)
        dg = _DistributionGraph()
        fixed = {}
        for nid in [n.nid for n in graph.operations()]:
            asap, alap = _windows(graph, base_asap, base_alap, fixed)
            dg.update(graph, asap, alap)
            reference = _distribution(graph, asap, alap)
            keys = set(reference)
            assert {k for k, v in dg._values.items() if v} <= keys
            for key in keys:
                assert dg.get(key) == pytest.approx(reference[key], abs=1e-12)
            fixed[nid] = asap[nid]

    def test_second_update_is_cheap(self, vender_graph):
        from repro.sched.force_directed import _DistributionGraph, _windows
        from repro.sched.timing import alap_times, asap_times

        graph = vender_graph
        asap, alap = _windows(graph, asap_times(graph),
                              alap_times(graph, 6), {})
        dg = _DistributionGraph()
        first = dg.update(graph, asap, alap)
        assert first == len(list(graph.operations()))
        assert dg.update(graph, asap, alap) == 0  # unchanged windows
