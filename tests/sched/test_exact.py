"""Exact branch-and-bound scheduler, and heuristic certification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import abs_diff, build
from repro.core.pm_pass import apply_power_management
from repro.ir.ops import ResourceClass
from repro.sched.exact import exact_minimum_schedule
from repro.sched.minimize import minimize_resources
from repro.sched.timing import InfeasibleScheduleError, critical_path_length
from tests.strategies import circuits


class TestExactKnownCases:
    def test_abs_diff_two_steps(self):
        result = exact_minimum_schedule(abs_diff(), 2)
        assert result.allocation.get(ResourceClass.SUB) == 2

    def test_abs_diff_three_steps(self):
        result = exact_minimum_schedule(abs_diff(), 3)
        assert result.allocation.get(ResourceClass.SUB) == 1

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleScheduleError):
            exact_minimum_schedule(abs_diff(), 1)

    def test_node_limit_enforced(self):
        # vender@6 still needs thousands of search nodes even with the
        # suffix lower bound (cordic no longer does — see below).
        graph = build("vender")
        with pytest.raises(RuntimeError, match="exceeded"):
            exact_minimum_schedule(graph, 6, node_limit=100)

    def test_cordic_certified_without_search_blowup(self):
        """The seeded incumbent plus the memoized suffix lower bound let
        exact scheduling certify cordic (the paper's largest benchmark,
        152 ops) instead of timing out: the heuristic schedule is optimal
        and the root bound proves it almost immediately."""
        graph = build("cordic")
        heuristic = minimize_resources(graph, 48).allocation
        result = exact_minimum_schedule(graph, 48, node_limit=10_000)
        assert result.allocation.cost() == heuristic.cost()
        assert result.explored <= 10_000


class TestHeuristicCertification:
    """The greedy min-resource search matches the exact optimum on the
    paper's benchmarks — the strongest evidence the Table II area column
    is not a heuristic artifact."""

    @pytest.mark.parametrize("name,steps", [
        ("dealer", 4), ("dealer", 5), ("dealer", 6),
        ("gcd", 5), ("gcd", 6), ("gcd", 7),
        ("vender", 5), ("vender", 6),
    ])
    def test_heuristic_is_optimal_on_benchmarks(self, name, steps):
        graph = build(name)
        heuristic = minimize_resources(graph, steps).allocation
        exact = exact_minimum_schedule(graph, steps).allocation
        assert heuristic.cost() == exact.cost()

    @pytest.mark.parametrize("name,steps", [("dealer", 6), ("gcd", 7)])
    def test_heuristic_optimal_on_pm_graphs(self, name, steps):
        """Also optimal on the PM-augmented graphs (with control edges)."""
        pm = apply_power_management(build(name), steps)
        heuristic = minimize_resources(pm.graph, steps).allocation
        exact = exact_minimum_schedule(pm.graph, steps).allocation
        assert heuristic.cost() == exact.cost()

    @settings(max_examples=25, deadline=None)
    @given(circuits(max_ops=7), st.integers(min_value=0, max_value=2))
    def test_heuristic_within_optimum_on_random_graphs(self, graph, slack):
        cp = critical_path_length(graph)
        heuristic = minimize_resources(graph, cp + slack).allocation
        exact = exact_minimum_schedule(graph, cp + slack,
                                       node_limit=500_000).allocation
        # The greedy search is not guaranteed optimal in general; certify
        # it never does worse than the optimum (sanity) and flag the gap.
        assert heuristic.cost() >= exact.cost()
        assert heuristic.cost() <= exact.cost() * 2 + 8
