"""Property-based tests for scheduling."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.force_directed import force_directed_schedule
from repro.sched.minimize import minimize_resources
from repro.sched.resources import unbounded_allocation
from repro.sched.list_scheduler import list_schedule
from repro.sched.timing import asap_times, critical_path_length
from tests.strategies import circuits


@given(circuits(), st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_list_schedule_with_unbounded_resources_verifies(graph, slack):
    cp = critical_path_length(graph)
    allocation = unbounded_allocation(graph)
    schedule = list_schedule(graph, cp + slack, allocation)
    schedule.verify(allocation)


@given(circuits(), st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_minimize_resources_always_schedules(graph, slack):
    cp = critical_path_length(graph)
    result = minimize_resources(graph, cp + slack)
    result.schedule.verify(result.allocation)
    assert unbounded_allocation(graph).dominates(result.allocation)


@given(circuits())
@settings(max_examples=30, deadline=None)
def test_force_directed_verifies_at_cp_plus_two(graph):
    cp = critical_path_length(graph)
    schedule = force_directed_schedule(graph, cp + 2)
    schedule.verify()


@given(circuits())
@settings(max_examples=60, deadline=None)
def test_asap_equals_schedule_lower_bound(graph):
    """No valid schedule can start a node before its ASAP time."""
    cp = critical_path_length(graph)
    asap = asap_times(graph)
    schedule = list_schedule(graph, cp, unbounded_allocation(graph))
    for node in graph.operations():
        assert schedule.step_of(node.nid) >= asap[node.nid]


@given(circuits())
@settings(max_examples=30, deadline=None)
def test_critical_path_is_achievable_minimum(graph):
    """cp steps work with unbounded resources; cp-1 must not."""
    cp = critical_path_length(graph)
    allocation = unbounded_allocation(graph)
    list_schedule(graph, cp, allocation)
    if cp > 1:
        from repro.sched.timing import InfeasibleScheduleError
        try:
            list_schedule(graph, cp - 1, allocation)
            raise AssertionError("cp-1 steps unexpectedly feasible")
        except InfeasibleScheduleError:
            pass
