"""Iterative modulo scheduling: MII bounds, the reservation table,
II minimization, and the pipelined-schedule properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import GraphBuilder
from repro.ir.ops import Op, ResourceClass
from repro.sched.modulo import (
    ModuloSchedulingError,
    minimize_initiation_interval,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
)
from repro.sched.resources import Allocation, unbounded_allocation
from repro.sched.schedule import Schedule
from repro.sched.timing import critical_path_length
from tests.strategies import generated_circuits


def two_muls_graph():
    """Two independent multiplies joined by an add."""
    b = GraphBuilder("two_muls")
    a = b.input("a")
    c = b.input("c")
    p = b.mul(a, c, name="p")
    q = b.mul(a, a, name="q")
    b.output(b.add(p, q, name="s"), "out")
    return b.build()


class TestResourceMII:
    def test_ceiling_of_busy_cycles_over_units(self, vender_graph):
        one_each = unbounded_allocation(vender_graph)
        assert resource_mii(vender_graph, one_each) == 1
        muls = sum(1 for n in vender_graph.operations() if n.op is Op.MUL)
        assert muls == 2
        squeezed = Allocation({cls: 1 for cls in ResourceClass})
        assert resource_mii(vender_graph, squeezed) >= muls

    def test_multicycle_ops_count_every_busy_cycle(self):
        graph = two_muls_graph()
        for node in graph.operations():
            if node.op is Op.MUL:
                node.latency = 2
        # 2 muls x 2 cycles on one unit: II >= 4.
        assert resource_mii(graph, Allocation(
            {ResourceClass.MUL: 1, ResourceClass.ADD: 1})) == 4

    def test_missing_class_rejected(self, dealer_graph):
        with pytest.raises(ValueError, match="no .* unit"):
            resource_mii(dealer_graph, Allocation({ResourceClass.MUL: 4}))


class TestRecurrenceMII:
    def test_acyclic_graph_is_one(self, small_circuit):
        assert recurrence_mii(small_circuit) == 1

    def test_explicit_recurrence_bounds_ii(self, chain_graph):
        # chain: a,c -> add(s) -> sub(d) -> out.  A distance-1 feedback
        # from d to s closes a cycle of total latency 2, forcing II >= 2.
        ids = {n.name: n.nid for n in chain_graph.operations()}
        assert recurrence_mii(
            chain_graph, [(ids["d"], ids["s"], 1)]) == 2

    def test_longer_distance_relaxes_the_bound(self, chain_graph):
        ids = {n.name: n.nid for n in chain_graph.operations()}
        assert recurrence_mii(
            chain_graph, [(ids["d"], ids["s"], 2)]) == 1

    def test_nonpositive_distance_rejected(self, chain_graph):
        ids = {n.name: n.nid for n in chain_graph.operations()}
        with pytest.raises(ValueError, match="distance"):
            recurrence_mii(chain_graph, [(ids["d"], ids["s"], 0)])


class TestModuloReservationTable:
    def test_schedule_verifies_against_allocation(self, dealer_graph):
        allocation = unbounded_allocation(dealer_graph)
        schedule = modulo_schedule(dealer_graph, 6, allocation, 2)
        schedule.verify(allocation)
        assert schedule.initiation_interval == 2

    def test_multicycle_op_spans_wrapped_slots(self):
        """A 2-cycle multiply at II=2 owns BOTH modulo slots, so two of
        them need two units no matter how they are offset."""
        graph = two_muls_graph()
        for node in graph.operations():
            if node.op is Op.MUL:
                node.latency = 2
        tight = Allocation({ResourceClass.MUL: 1, ResourceClass.ADD: 1})
        with pytest.raises(ModuloSchedulingError) as err:
            modulo_schedule(graph, 8, tight, 2)
        assert err.value.bottleneck is ResourceClass.MUL
        roomy = tight.with_extra(ResourceClass.MUL)
        schedule = modulo_schedule(graph, 8, roomy, 2)
        schedule.verify(roomy)

    def test_self_overlap_names_the_bottleneck(self):
        """latency > II x units is impossible for a single op alone."""
        graph = two_muls_graph()
        for node in graph.operations():
            if node.op is Op.MUL:
                node.latency = 3
        with pytest.raises(ModuloSchedulingError) as err:
            modulo_schedule(graph, 9, Allocation(
                {ResourceClass.MUL: 1, ResourceClass.ADD: 1}), 2)
        assert err.value.bottleneck is ResourceClass.MUL
        assert "slot" in str(err.value)

    def test_bad_ii_rejected(self, dealer_graph):
        with pytest.raises(ValueError, match="initiation interval"):
            modulo_schedule(dealer_graph, 6,
                            unbounded_allocation(dealer_graph), 0)


class TestResourceUsageModuloWrap:
    """Regression pin for ``Schedule.resource_usage`` under pipelining.

    Issue 10 feared the wrap was missing; it has been correct since the
    seed (``slot = step % ii``).  These tests pin the behaviour so a
    refactor cannot silently lose it: a 2-cycle multiplier at II=2 wraps
    its second busy cycle into slot 0, and two staggered copies collide
    in *both* slots even though their flat step ranges are disjoint.
    """

    def _schedule(self, starts, ii):
        graph = two_muls_graph()
        by_name = {n.name: n.nid for n in graph.operations()}
        for node in graph.operations():
            if node.op is Op.MUL:
                node.latency = 2
        start = {by_name["p"]: starts[0], by_name["q"]: starts[1],
                 by_name["s"]: 4}
        for node in graph:
            if node.nid not in start:
                start[node.nid] = 0 if not graph.preds(node.nid) else 5
        return Schedule(graph=graph, n_steps=6, start=start,
                        initiation_interval=ii)

    def test_disjoint_steps_still_collide_modulo_ii(self):
        # p busy in steps {0,1}, q in {2,3}: disjoint flat, but both
        # cover slots {0,1} at II=2 -> two units required.
        schedule = self._schedule((0, 2), ii=2)
        assert schedule.resource_usage().get(ResourceClass.MUL) == 2

    def test_unpipelined_usage_stays_flat(self):
        schedule = self._schedule((0, 2), ii=None)
        assert schedule.resource_usage().get(ResourceClass.MUL) == 1

    def test_wrapped_second_cycle_lands_in_slot_zero(self):
        # p at step 1 with latency 2 occupies slots 1 and 0 at II=2; a
        # q at step 2 (slots 0,1) overlaps it in both -> two units.
        schedule = self._schedule((1, 2), ii=2)
        assert schedule.resource_usage().get(ResourceClass.MUL) == 2


class TestMinimizeInitiationInterval:
    def test_beats_ceil_division_on_dealer(self, dealer_graph):
        cap = -(-critical_path_length(dealer_graph) // 1)  # flat II cap
        found = minimize_initiation_interval(dealer_graph, 6, max_ii=cap)
        assert found.method == "modulo"
        assert found.initiation_interval < cap
        assert found.initiation_interval >= found.mii
        found.schedule.verify(found.allocation)
        assert found.schedule.initiation_interval == \
            found.initiation_interval

    def test_never_worse_than_the_cap(self, small_circuit):
        cp = critical_path_length(small_circuit)
        for n_stages in (1, 2):
            cap = -(-cp // n_stages)
            found = minimize_initiation_interval(small_circuit, cp,
                                                 max_ii=cap)
            assert found.initiation_interval <= cap
            found.schedule.verify(found.allocation)

    def test_list_fallback_when_cap_is_mii(self, chain_graph):
        # chain's MII is 1 (one op per class); cap 1 leaves nothing to
        # search, so the ceil-division incumbent is returned as-is.
        found = minimize_initiation_interval(chain_graph, 2, max_ii=1)
        assert found.method == "list"
        assert found.initiation_interval == 1
        assert found.attempts == 0
        found.schedule.verify(found.allocation)

    def test_mii_recorded_with_both_components(self, vender_graph):
        found = minimize_initiation_interval(vender_graph, 6)
        assert found.mii == max(found.res_mii, found.rec_mii)
        assert found.rec_mii == 1

    def test_explicit_allocation_may_fail(self):
        # Two 1-cycle muls on one unit need II >= 2; capping at 1 with a
        # fixed allocation leaves no feasible II and no incumbent.
        graph = two_muls_graph()
        with pytest.raises(ModuloSchedulingError):
            minimize_initiation_interval(
                graph, 3, max_ii=1,
                allocation=Allocation({ResourceClass.MUL: 1,
                                       ResourceClass.ADD: 1}))

    def test_bad_cap_rejected(self, dealer_graph):
        with pytest.raises(ValueError, match="cap"):
            minimize_initiation_interval(dealer_graph, 6, max_ii=0)


class TestModuloProperties:
    """Issue 10 satellite: every modulo schedule respects dependences,
    the modulo reservation table, and II >= MII."""

    @given(generated_circuits(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_found_schedule_is_sound(self, graph, slack):
        n_steps = critical_path_length(graph) + slack
        found = minimize_initiation_interval(graph, n_steps)
        ii = found.initiation_interval
        assert found.mii <= ii <= n_steps
        assert found.mii == max(found.res_mii, found.rec_mii)
        schedule = found.schedule
        assert schedule.initiation_interval == ii

        # Dependences: every consumer starts at or after each producer's
        # finish (data and control edges alike).
        for node in graph:
            for succ in graph.succs(node.nid):
                assert schedule.step_of(succ) >= \
                    schedule.step_of(node.nid) + node.latency, \
                    f"{graph.name}: {node.nid}->{succ}"

        # Modulo reservation table: busy cycles counted mod II never
        # exceed the returned allocation in any slot.
        table = {}
        for node in graph.operations():
            s = schedule.step_of(node.nid)
            for k in range(node.latency):
                key = ((s + k) % ii, node.resource)
                table[key] = table.get(key, 0) + 1
        for (slot, cls), n in table.items():
            assert n <= found.allocation.get(cls), \
                f"{graph.name}: slot {slot} {cls.value} over-subscribed"

        schedule.verify(found.allocation)

    @given(generated_circuits(presets=("tiny", "small"), max_seed=999))
    @settings(max_examples=25, deadline=None)
    def test_modulo_never_beats_mii(self, graph):
        """No run may report an II below its own lower bound."""
        n_steps = critical_path_length(graph) + 2
        found = minimize_initiation_interval(graph, n_steps)
        assert found.initiation_interval >= \
            resource_mii(graph, found.allocation) >= 1
