"""Shared fixtures: the paper's circuits and small hand-made graphs."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.circuits import abs_diff, build, cordic, dealer, gcd, vender
from repro.ir.builder import GraphBuilder

# CI determinism: every Hypothesis test derives its examples from the
# test function itself instead of a fresh random seed, so a property
# either fails on every run or on none — no flaky tier-1 reds.  Any
# circuit an example run DOES falsify gets pinned as a named regression
# (see ``repro.circuits.extra.gated_recurrence``) rather than left to
# the generator to stumble on again.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.load_profile("ci")


@pytest.fixture
def abs_diff_graph():
    return abs_diff()


@pytest.fixture
def dealer_graph():
    return dealer()


@pytest.fixture
def gcd_graph():
    return gcd()


@pytest.fixture
def vender_graph():
    return vender()


@pytest.fixture
def cordic_graph():
    return cordic()


@pytest.fixture(params=["dealer", "gcd", "vender"])
def small_circuit(request):
    """Each of the three small paper benchmarks."""
    return build(request.param)


@pytest.fixture
def chain_graph():
    """in -> add -> sub -> out : a 2-deep arithmetic chain."""
    b = GraphBuilder("chain")
    a = b.input("a")
    c = b.input("c")
    s = b.add(a, c, name="s")
    d = b.sub(s, c, name="d")
    b.output(d, "out")
    return b.build()


@pytest.fixture
def diamond_graph():
    """Two independent ops joined by a mux — minimal PM-able shape."""
    b = GraphBuilder("diamond")
    a = b.input("a")
    c = b.input("c")
    cond = b.gt(a, c, name="cond")
    left = b.add(a, c, name="left")
    right = b.sub(a, c, name="right")
    m = b.mux(cond, left, right, name="pick")
    b.output(m, "out")
    return b.build()
