"""CDFG structure: nodes, edges, traversal, control edges."""

import pytest

from repro.ir.graph import CDFG, CDFGError
from repro.ir.ops import Op


def make_diamond():
    g = CDFG("d")
    a = g.add_node(Op.INPUT, name="a")
    b = g.add_node(Op.INPUT, name="b")
    c = g.add_node(Op.GT, [a, b], name="c")
    s0 = g.add_node(Op.SUB, [b, a], name="s0")
    s1 = g.add_node(Op.SUB, [a, b], name="s1")
    m = g.add_node(Op.MUX, [c, s0, s1], name="m")
    o = g.add_node(Op.OUTPUT, [m], name="out")
    return g, (a, b, c, s0, s1, m, o)


class TestConstruction:
    def test_add_node_assigns_sequential_ids(self):
        g = CDFG()
        assert g.add_node(Op.INPUT, name="x") == 0
        assert g.add_node(Op.INPUT, name="y") == 1

    def test_unknown_operand_rejected(self):
        g = CDFG()
        with pytest.raises(CDFGError, match="does not exist"):
            g.add_node(Op.OUTPUT, [99])

    def test_const_requires_value(self):
        g = CDFG()
        with pytest.raises(ValueError, match="requires a value"):
            g.add_node(Op.CONST)

    def test_wrong_arity_rejected(self):
        g = CDFG()
        a = g.add_node(Op.INPUT, name="a")
        with pytest.raises(ValueError, match="expects 3 operands"):
            g.add_node(Op.MUX, [a, a])

    def test_len_contains_iter(self):
        g, ids = make_diamond()
        assert len(g) == 7
        assert ids[0] in g
        assert 99 not in g
        assert {n.nid for n in g} == set(ids)


class TestEdges:
    def test_data_preds_succs(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        assert g.data_preds(m) == [c, s0, s1]
        assert set(g.data_succs(a)) == {c, s0, s1}
        assert g.data_succs(m) == [o]

    def test_duplicate_operand_collapsed(self):
        g = CDFG()
        a = g.add_node(Op.INPUT, name="a")
        d = g.add_node(Op.ADD, [a, a], name="double")
        assert g.data_preds(d) == [a]
        assert g.data_succs(a) == [d]

    def test_control_edges(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        g.add_control_edge(c, s0)
        assert (c, s0) in g.control_edges()
        assert s0 in g.control_succs(c)
        assert c in g.control_preds(s0)
        assert c in g.preds(s0)
        assert s0 in g.succs(c)

    def test_control_edge_removal(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        g.add_control_edge(c, s0)
        g.remove_control_edge(c, s0)
        assert g.control_edges() == []

    def test_control_self_edge_rejected(self):
        g, (a, b, c, *_rest) = make_diamond()
        with pytest.raises(CDFGError, match="self-edge"):
            g.add_control_edge(c, c)

    def test_control_cycle_rejected_and_rolled_back(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        with pytest.raises(CDFGError, match="cycle"):
            g.add_control_edge(m, c)  # m depends on c already
        assert g.control_edges() == []

    def test_unknown_node_in_control_edge(self):
        g, _ = make_diamond()
        with pytest.raises(CDFGError, match="unknown node"):
            g.add_control_edge(0, 99)

    def test_clear_control_edges(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        g.add_control_edge(c, s0)
        g.clear_control_edges()
        assert g.control_edges() == []


class TestTraversal:
    def test_topological_order_respects_data_edges(self):
        g, ids = make_diamond()
        order = g.topological_order()
        pos = {nid: i for i, nid in enumerate(order)}
        for node in g:
            for p in g.data_preds(node.nid):
                assert pos[p] < pos[node.nid]

    def test_topological_order_respects_control_edges(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        g.add_control_edge(c, s1)
        order = g.topological_order()
        assert order.index(c) < order.index(s1)

    def test_transitive_fanin(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        assert g.transitive_fanin(m) == {a, b, c, s0, s1}
        assert g.transitive_fanin(c) == {a, b}
        assert g.transitive_fanin(a) == set()
        assert a in g.transitive_fanin(a, include_self=True)

    def test_transitive_fanout(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        assert g.transitive_fanout(c) == {m, o}
        assert g.transitive_fanout(a) == {c, s0, s1, m, o}

    def test_longest_path_to_output(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        dist = g.longest_path_to_output()
        assert dist[o] == 0
        assert dist[m] == 1
        assert dist[s0] == 2
        assert dist[c] == 2
        assert dist[a] == 2  # zero-latency input + sub + mux


class TestQueries:
    def test_node_kind_helpers(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        assert [n.nid for n in g.inputs()] == [a, b]
        assert [n.nid for n in g.outputs()] == [o]
        assert [n.nid for n in g.muxes()] == [m]
        assert {n.nid for n in g.operations()} == {c, s0, s1, m}

    def test_op_counts(self):
        g, _ = make_diamond()
        assert g.op_counts() == {"COMP": 1, "-": 2, "MUX": 1}

    def test_node_lookup_error(self):
        g, _ = make_diamond()
        with pytest.raises(CDFGError, match="no node"):
            g.node(1234)


class TestCopy:
    def test_copy_is_deep(self):
        g, (a, b, c, s0, s1, m, o) = make_diamond()
        g.add_control_edge(c, s0)
        clone = g.copy()
        clone.add_control_edge(c, s1)
        assert (c, s1) not in g.control_edges()
        assert (c, s0) in clone.control_edges()
        assert len(clone) == len(g)

    def test_copy_preserves_node_fields(self):
        g, _ = make_diamond()
        clone = g.copy(name="other")
        assert clone.name == "other"
        for node in g:
            other = clone.node(node.nid)
            assert other.op is node.op
            assert other.operands == node.operands
            assert other.name == node.name

    def test_copy_can_extend_without_id_clash(self):
        g, _ = make_diamond()
        clone = g.copy()
        new = clone.add_node(Op.INPUT, name="z")
        assert new not in g
