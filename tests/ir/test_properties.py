"""Property-based tests on the IR itself."""

from hypothesis import given, settings

from repro.ir.transform import eliminate_dead_nodes, fold_constants, rebuild
from repro.ir.validate import validate
from repro.sim.reference import evaluate
from tests.strategies import circuits, input_vector

from hypothesis import strategies as st


@given(circuits())
def test_generated_circuits_validate(graph):
    validate(graph)


@given(circuits())
def test_topological_order_is_consistent(graph):
    order = graph.topological_order()
    assert sorted(order) == sorted(graph.node_ids)
    pos = {nid: i for i, nid in enumerate(order)}
    for node in graph:
        for pred in graph.preds(node.nid):
            assert pos[pred] < pos[node.nid]


@given(circuits())
def test_fanin_fanout_duality(graph):
    ids = graph.node_ids
    for a in ids[: min(6, len(ids))]:
        for b in graph.transitive_fanout(a):
            assert a in graph.transitive_fanin(b)


@given(circuits())
def test_copy_equals_original(graph):
    clone = graph.copy()
    assert len(clone) == len(graph)
    for node in graph:
        other = clone.node(node.nid)
        assert other.op is node.op and other.operands == node.operands


@given(circuits())
def test_rebuild_preserves_behaviour(graph):
    rebuilt = rebuild(graph)
    validate(rebuilt)
    inputs = {n.name: 17 for n in graph.inputs()}
    assert evaluate(rebuilt, inputs) == evaluate(graph, inputs)


@settings(max_examples=50)
@given(st.data())
def test_fold_constants_preserves_behaviour(data):
    graph = data.draw(circuits())
    folded = fold_constants(graph)
    vector = data.draw(input_vector(graph))
    assert evaluate(folded, vector) == evaluate(graph, vector)


@given(circuits())
def test_dead_node_elimination_keeps_outputs(graph):
    clean = eliminate_dead_nodes(graph)
    assert len(clean.outputs()) == len(graph.outputs())
    inputs = {n.name: -3 for n in graph.inputs()}
    assert evaluate(clean, inputs) == evaluate(graph, inputs)
