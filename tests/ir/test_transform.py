"""Graph transforms: rebuild, dead-node elimination, constant folding."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.ops import Op
from repro.ir.transform import eliminate_dead_nodes, fold_constants, rebuild
from repro.sim.reference import evaluate


def graph_with_dead_op():
    b = GraphBuilder("t")
    a = b.input("a")
    live = b.add(a, 1, name="live")
    b.sub(a, 1, name="dead")
    b.output(live, "out")
    return b.build(validate_graph=False)


class TestRebuild:
    def test_renumbers_densely(self):
        g = graph_with_dead_op()
        out = rebuild(g)
        assert sorted(n.nid for n in out) == list(range(len(out)))
        assert len(out) == len(g)

    def test_keep_subset(self):
        g = graph_with_dead_op()
        keep = set()
        for out in g.outputs():
            keep |= g.transitive_fanin(out.nid, include_self=True)
        smaller = rebuild(g, keep=keep)
        assert len(smaller) < len(g)

    def test_dropped_operand_detected(self):
        g = graph_with_dead_op()
        live_consumer = g.outputs()[0].nid
        keep = {live_consumer}  # operand chain missing
        with pytest.raises(ValueError, match="operand"):
            rebuild(g, keep=keep)

    def test_control_edges_survive(self, diamond_graph):
        g = diamond_graph.copy()
        muxes = g.muxes()
        cond = g.node(muxes[0].nid).select_operand
        target = muxes[0].data_operand(0)
        g.add_control_edge(cond, target)
        out = rebuild(g)
        assert len(out.control_edges()) == 1


class TestDeadNodeElimination:
    def test_removes_dead(self):
        g = graph_with_dead_op()
        clean = eliminate_dead_nodes(g)
        assert all(n.name != "dead" for n in clean)
        assert evaluate(clean, {"a": 5})["out"] == 6

    def test_idempotent(self, dealer_graph):
        once = eliminate_dead_nodes(dealer_graph)
        twice = eliminate_dead_nodes(once)
        assert len(once) == len(twice)


class TestConstantFolding:
    def test_folds_arithmetic(self):
        b = GraphBuilder("t")
        a = b.input("a")
        c = b.add(b.const(2), b.const(3))
        b.output(b.add(a, c), "out")
        g = fold_constants(b.build())
        adds = [n for n in g if n.op is Op.ADD]
        assert len(adds) == 1  # 2+3 folded
        assert evaluate(g, {"a": 1})["out"] == 6

    def test_folds_constant_mux_select(self):
        b = GraphBuilder("t")
        a = b.input("a")
        m = b.mux(b.const(1), a + 1, a + 2)
        b.output(m, "out")
        g = fold_constants(b.build())
        assert not g.muxes()
        assert evaluate(g, {"a": 0})["out"] == 2  # select=1 routes in1

    def test_folding_respects_width(self):
        b = GraphBuilder("t")
        a = b.input("a")
        c = b.add(b.const(100), b.const(100))
        b.output(b.mux(a > 0, c, c), "out")
        g = fold_constants(b.build(), width=8)
        consts = {n.value for n in g.constants()}
        assert -56 in consts

    def test_behaviour_preserved_on_benchmarks(self, small_circuit):
        from repro.sim.vectors import random_vectors
        folded = fold_constants(small_circuit)
        for vec in random_vectors(small_circuit, 20, seed=3):
            assert evaluate(folded, vec) == evaluate(small_circuit, vec)
