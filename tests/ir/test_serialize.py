"""CDFG JSON serialization round trips."""

import pytest
from hypothesis import given, settings

from repro.circuits import build
from repro.core.pm_pass import apply_power_management
from repro.ir.serialize import dumps, graph_from_dict, graph_to_dict, loads
from repro.sim.reference import evaluate
from repro.sim.vectors import random_vectors
from tests.strategies import circuits, generated_circuits


@pytest.mark.parametrize("name", ["dealer", "gcd", "vender", "cordic"])
def test_benchmarks_round_trip(name):
    graph = build(name)
    restored = loads(dumps(graph))
    assert restored.name == graph.name
    assert len(restored) == len(graph)
    for vec in random_vectors(graph, 10, seed=1):
        assert evaluate(restored, vec) == evaluate(graph, vec)


def test_control_edges_survive():
    result = apply_power_management(build("gcd"), 7)
    restored = loads(dumps(result.graph))
    assert len(restored.control_edges()) == \
        len(result.graph.control_edges())


def test_custom_latency_preserved():
    graph = build("vender")
    mul = next(n for n in graph if n.name == "p2")
    mul.latency = 3
    restored = loads(dumps(graph))
    restored_mul = next(n for n in restored if n.name == "p2")
    assert restored_mul.latency == 3


def test_default_latency_not_stored():
    data = graph_to_dict(build("dealer"))
    assert all("latency" not in entry for entry in data["nodes"])


def test_bad_format_rejected():
    with pytest.raises(ValueError, match="unsupported CDFG format"):
        graph_from_dict({"format": 99, "nodes": []})


def test_unknown_op_rejected():
    with pytest.raises(ValueError, match="unknown op"):
        graph_from_dict({"format": 1, "nodes": [
            {"id": 0, "op": "FROBNICATE", "operands": []}]})


@settings(max_examples=40, deadline=None)
@given(circuits())
def test_random_circuits_round_trip(graph):
    restored = loads(dumps(graph))
    vec = {n.name: -7 for n in graph.inputs()}
    assert evaluate(restored, vec) == evaluate(graph, vec)


@settings(max_examples=50, deadline=None)
@given(generated_circuits())
def test_generated_circuits_dump_load_is_lossless(graph):
    """dump -> load -> dump is a fixpoint over repro.gen workloads:
    the reloaded graph is content-identical (same fingerprint), not
    merely behaviourally equivalent."""
    from repro.pipeline import graph_fingerprint

    restored = loads(dumps(graph))
    assert graph_to_dict(restored) == graph_to_dict(graph)
    assert graph_fingerprint(restored) == graph_fingerprint(graph)
    for vec in random_vectors(graph, 4, seed=11):
        assert evaluate(restored, vec) == evaluate(graph, vec)


@settings(max_examples=25, deadline=None)
@given(generated_circuits(presets=("tiny", "branchy")))
def test_generated_circuits_control_edges_survive(graph):
    from repro.sched.timing import critical_path_length

    result = apply_power_management(graph, critical_path_length(graph) + 1)
    restored = loads(dumps(result.graph))
    assert sorted(restored.control_edges()) == \
        sorted(result.graph.control_edges())
