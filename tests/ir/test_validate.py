"""Structural validation rules."""

import pytest

from repro.ir.graph import CDFG, CDFGError
from repro.ir.ops import Op
from repro.ir.validate import validate


def minimal_valid():
    g = CDFG("v")
    a = g.add_node(Op.INPUT, name="a")
    g.add_node(Op.OUTPUT, [a], name="out")
    return g


def test_minimal_graph_is_valid():
    validate(minimal_valid())


def test_no_outputs_rejected():
    g = CDFG("v")
    g.add_node(Op.INPUT, name="a")
    with pytest.raises(CDFGError, match="no outputs"):
        validate(g)


def test_dead_operation_rejected():
    g = minimal_valid()
    a = g.inputs()[0].nid
    g.add_node(Op.ADD, [a, a], name="dead")
    with pytest.raises(CDFGError, match="does not reach any output"):
        validate(g)


def test_variable_shift_rejected():
    g = CDFG("v")
    a = g.add_node(Op.INPUT, name="a")
    k = g.add_node(Op.INPUT, name="k")
    s = g.add_node(Op.SHR, [a, k], name="s")
    g.add_node(Op.OUTPUT, [s], name="out")
    with pytest.raises(CDFGError, match="non-constant amount"):
        validate(g)


def test_constant_shift_accepted():
    g = CDFG("v")
    a = g.add_node(Op.INPUT, name="a")
    k = g.add_node(Op.CONST, value=2)
    s = g.add_node(Op.SHR, [a, k], name="s")
    g.add_node(Op.OUTPUT, [s], name="out")
    validate(g)


def test_benchmarks_validate(small_circuit):
    validate(small_circuit)
