"""Node helpers and DOT export."""

import pytest

from repro.ir.dot import to_dot
from repro.ir.node import Node
from repro.ir.ops import Op, ResourceClass


class TestNode:
    def test_mux_port_accessors(self):
        n = Node(nid=5, op=Op.MUX, operands=[1, 2, 3])
        assert n.select_operand == 1
        assert n.data_operand(0) == 2
        assert n.data_operand(1) == 3

    def test_data_operand_bad_side(self):
        n = Node(nid=5, op=Op.MUX, operands=[1, 2, 3])
        with pytest.raises(ValueError, match="side must be 0 or 1"):
            n.data_operand(2)

    def test_non_mux_port_access_raises(self):
        n = Node(nid=1, op=Op.ADD, operands=[0, 0])
        with pytest.raises(ValueError, match="not a MUX"):
            _ = n.select_operand

    def test_resource_and_schedulable(self):
        add = Node(nid=0, op=Op.ADD, operands=[0, 0])
        assert add.is_schedulable
        assert add.resource is ResourceClass.ADD
        inp = Node(nid=1, op=Op.INPUT)
        assert not inp.is_schedulable
        assert inp.resource is None

    def test_label_variants(self):
        assert Node(nid=0, op=Op.CONST, value=7).label() == "7"
        assert Node(nid=1, op=Op.ADD, operands=[0, 0], name="s").label() == "s:+"
        assert Node(nid=2, op=Op.ADD, operands=[0, 0]).label() == "n2:+"

    def test_latency_override(self):
        n = Node(nid=0, op=Op.MUL, operands=[0, 0], latency=2)
        assert n.latency == 2


class TestDot:
    def test_contains_all_nodes_and_edges(self, abs_diff_graph):
        dot = to_dot(abs_diff_graph)
        for node in abs_diff_graph:
            assert f"n{node.nid} [" in dot
        assert dot.count("->") >= 7
        assert dot.strip().startswith("digraph")

    def test_mux_port_labels(self, abs_diff_graph):
        dot = to_dot(abs_diff_graph)
        assert 'label="sel"' in dot
        assert 'label="0"' in dot
        assert 'label="1"' in dot

    def test_control_edges_dashed(self, diamond_graph):
        g = diamond_graph.copy()
        m = g.muxes()[0]
        g.add_control_edge(m.select_operand, m.data_operand(0))
        assert "style=dashed" in to_dot(g)

    def test_schedule_ranks(self, abs_diff_graph):
        schedule = {n.nid: 0 for n in abs_diff_graph.operations()}
        dot = to_dot(abs_diff_graph, schedule)
        assert "rank=same" in dot
        assert "step 1" in dot
