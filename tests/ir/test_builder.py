"""GraphBuilder: fluent construction, overloads, coercion, hash-consing."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.graph import CDFGError
from repro.ir.ops import Op
from repro.sim.reference import evaluate


class TestLeaves:
    def test_input_output_roundtrip(self):
        b = GraphBuilder("t")
        a = b.input("a")
        b.output(a, "out")
        g = b.build()
        assert [n.name for n in g.inputs()] == ["a"]
        assert [n.name for n in g.outputs()] == ["out"]

    def test_constants_are_hash_consed(self):
        b = GraphBuilder("t")
        c1 = b.const(5)
        c2 = b.const(5)
        assert c1.nid == c2.nid
        assert b.const(6).nid != c1.nid

    def test_named_constants_are_distinct(self):
        b = GraphBuilder("t")
        assert b.const(5).nid != b.const(5, name="limit").nid


class TestOperators:
    def test_overloads_build_expected_ops(self):
        b = GraphBuilder("t")
        x, y = b.input("x"), b.input("y")
        exprs = {
            Op.ADD: x + y, Op.SUB: x - y, Op.MUL: x * y,
            Op.GT: x > y, Op.LT: x < y, Op.GE: x >= y, Op.LE: x <= y,
            Op.AND: x & y, Op.OR: x | y, Op.XOR: x ^ y,
        }
        for op, value in exprs.items():
            assert b.graph.node(value.nid).op is op

    def test_int_coercion_in_overloads(self):
        b = GraphBuilder("t")
        x = b.input("x")
        s = x + 3
        node = b.graph.node(s.nid)
        assert b.graph.node(node.operands[1]).op is Op.CONST

    def test_shift_overloads(self):
        b = GraphBuilder("t")
        x = b.input("x")
        assert b.graph.node((x >> 2).nid).op is Op.SHR
        assert b.graph.node((x << 1).nid).op is Op.SHL

    def test_negative_shift_rejected(self):
        b = GraphBuilder("t")
        x = b.input("x")
        with pytest.raises(ValueError, match="non-negative"):
            b.shr(x, -1)

    def test_foreign_value_rejected(self):
        b1, b2 = GraphBuilder("a"), GraphBuilder("b")
        x = b1.input("x")
        with pytest.raises(ValueError, match="different builder"):
            b2.add(x, 1)

    def test_bad_type_rejected(self):
        b = GraphBuilder("t")
        with pytest.raises(TypeError, match="expected Value or int"):
            b.add("nope", 1)


class TestMux:
    def test_mux_operand_order(self):
        b = GraphBuilder("t")
        c, x, y = b.input("c"), b.input("x"), b.input("y")
        m = b.mux(c, x, y)
        node = b.graph.node(m.nid)
        assert node.operands == [c.nid, x.nid, y.nid]
        assert node.select_operand == c.nid
        assert node.data_operand(0) == x.nid
        assert node.data_operand(1) == y.nid

    def test_select_sugar_matches_ternary_semantics(self):
        b = GraphBuilder("t")
        c = b.input("c")
        r = b.select(c, b.const(10), b.const(20))
        b.output(r, "out")
        g = b.build()
        assert evaluate(g, {"c": 1})["out"] == 10
        assert evaluate(g, {"c": 0})["out"] == 20


class TestBuild:
    def test_build_validates(self):
        b = GraphBuilder("t")
        b.input("a")  # no outputs
        with pytest.raises(CDFGError, match="no outputs"):
            b.build()

    def test_build_unvalidated_skips_checks(self):
        b = GraphBuilder("t")
        b.input("a")
        assert b.build(validate_graph=False) is b.graph

    def test_behavioural_sanity(self):
        b = GraphBuilder("t")
        x, y = b.input("x"), b.input("y")
        b.output((x + y) * 2 - y, "r")
        g = b.build()
        assert evaluate(g, {"x": 3, "y": 4})["r"] == (3 + 4) * 2 - 4
