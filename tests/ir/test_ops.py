"""Operation classification and bit-true evaluation semantics."""

import pytest

from repro.ir.ops import (
    Op,
    OpSemantics,
    ResourceClass,
    arity,
    default_latency,
    is_commutative,
    is_comparison,
    is_schedulable,
    is_structural,
    is_wiring,
    resource_class,
)


class TestClassification:
    def test_comparisons(self):
        for op in (Op.GT, Op.LT, Op.GE, Op.LE, Op.EQ, Op.NE):
            assert is_comparison(op)
            assert resource_class(op) is ResourceClass.COMP

    def test_arith_resource_classes(self):
        assert resource_class(Op.ADD) is ResourceClass.ADD
        assert resource_class(Op.SUB) is ResourceClass.SUB
        assert resource_class(Op.MUL) is ResourceClass.MUL
        assert resource_class(Op.MUX) is ResourceClass.MUX

    def test_structural_ops_not_schedulable(self):
        for op in (Op.INPUT, Op.OUTPUT, Op.CONST):
            assert is_structural(op)
            assert not is_schedulable(op)
            assert resource_class(op) is None

    def test_wiring_ops_not_schedulable(self):
        for op in (Op.SHL, Op.SHR, Op.PASS):
            assert is_wiring(op)
            assert not is_schedulable(op)

    def test_schedulable_latency_is_one(self):
        assert default_latency(Op.ADD) == 1
        assert default_latency(Op.MUX) == 1
        assert default_latency(Op.MUL) == 1

    def test_non_schedulable_latency_is_zero(self):
        assert default_latency(Op.INPUT) == 0
        assert default_latency(Op.SHR) == 0
        assert default_latency(Op.CONST) == 0

    def test_arity(self):
        assert arity(Op.MUX) == 3
        assert arity(Op.ADD) == 2
        assert arity(Op.NOT) == 1
        assert arity(Op.INPUT) == 0
        assert arity(Op.OUTPUT) == 1

    def test_commutativity(self):
        assert is_commutative(Op.ADD)
        assert is_commutative(Op.MUL)
        assert not is_commutative(Op.SUB)
        assert not is_commutative(Op.GT)


class TestSemantics:
    def setup_method(self):
        self.sem = OpSemantics(width=8)

    def test_wrap_range(self):
        assert self.sem.wrap(127) == 127
        assert self.sem.wrap(128) == -128
        assert self.sem.wrap(-129) == 127
        assert self.sem.wrap(256) == 0

    def test_add_overflow_wraps(self):
        assert self.sem.evaluate(Op.ADD, [100, 100]) == -56

    def test_sub(self):
        assert self.sem.evaluate(Op.SUB, [5, 9]) == -4

    def test_mul_wraps(self):
        assert self.sem.evaluate(Op.MUL, [16, 16]) == 0

    @pytest.mark.parametrize("op,a,b,expected", [
        (Op.GT, 3, 2, 1), (Op.GT, 2, 3, 0), (Op.GT, 2, 2, 0),
        (Op.LT, -1, 0, 1), (Op.GE, 2, 2, 1), (Op.LE, 3, 2, 0),
        (Op.EQ, 7, 7, 1), (Op.NE, 7, 7, 0),
    ])
    def test_comparisons(self, op, a, b, expected):
        assert self.sem.evaluate(op, [a, b]) == expected

    def test_mux_selects(self):
        assert self.sem.evaluate(Op.MUX, [0, 10, 20]) == 10
        assert self.sem.evaluate(Op.MUX, [1, 10, 20]) == 20
        # Any nonzero select routes input 1.
        assert self.sem.evaluate(Op.MUX, [5, 10, 20]) == 20

    def test_shift_right_is_arithmetic(self):
        assert self.sem.evaluate(Op.SHR, [-8, 1]) == -4
        assert self.sem.evaluate(Op.SHR, [8, 2]) == 2

    def test_shift_left_wraps(self):
        assert self.sem.evaluate(Op.SHL, [96, 1]) == -64

    def test_logic_ops(self):
        assert self.sem.evaluate(Op.AND, [12, 10]) == 8
        assert self.sem.evaluate(Op.OR, [12, 10]) == 14
        assert self.sem.evaluate(Op.XOR, [12, 10]) == 6
        assert self.sem.evaluate(Op.NOT, [0]) == -1

    def test_pass_and_output(self):
        assert self.sem.evaluate(Op.PASS, [42]) == 42
        assert self.sem.evaluate(Op.OUTPUT, [42]) == 42

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            self.sem.evaluate(Op.INPUT, [])

    def test_width_4(self):
        sem = OpSemantics(width=4)
        assert sem.evaluate(Op.ADD, [7, 1]) == -8
        assert sem.wrap(15) == -1
