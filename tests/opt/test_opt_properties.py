"""Property-based guarantees of the search drivers (Hypothesis).

Three satellite properties over the ``repro.gen`` scenario families:

* every driver's result is at least the best built-in greedy ordering
  strategy on gated weight (the greedy-seeding invariant);
* annealing is deterministic per (configuration, seed);
* an interrupted run resumed from its journal lands on the outcome an
  uninterrupted run finds.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.reordering import gated_weight, strategy_search
from repro.opt import anneal, beam_search, random_search
from repro.opt.evaluate import EvaluationBudgetExceeded

from tests.strategies import opt_scenarios

_SETTINGS = dict(deadline=None,
                 suppress_health_check=[HealthCheck.data_too_large])


@settings(max_examples=20, **_SETTINGS)
@given(scenario=opt_scenarios())
def test_anneal_at_least_best_greedy(scenario):
    graph, steps = scenario
    best_greedy = gated_weight(strategy_search(graph, steps).best)
    result = anneal(graph, n_steps=steps, iters=40, seed=0)
    assert result.best_score >= best_greedy - 1e-9
    # ...and the result's own greedy bookkeeping agrees.
    assert result.best_greedy_score == pytest.approx(best_greedy)


@settings(max_examples=12, **_SETTINGS)
@given(scenario=opt_scenarios(presets=("tiny", "small")))
def test_beam_and_random_at_least_best_greedy(scenario):
    graph, steps = scenario
    best_greedy = gated_weight(strategy_search(graph, steps).best)
    assert beam_search(graph, n_steps=steps,
                       beam_width=2).best_score >= best_greedy - 1e-9
    assert random_search(graph, n_steps=steps, iters=10,
                         seed=1).best_score >= best_greedy - 1e-9


@settings(max_examples=15, **_SETTINGS)
@given(scenario=opt_scenarios())
def test_anneal_deterministic_per_config_and_seed(scenario):
    graph, steps = scenario
    kwargs = dict(n_steps=steps, iters=30, seed=5, restarts=2)
    assert anneal(graph, **kwargs).outcome() == \
        anneal(graph, **kwargs).outcome()


@settings(max_examples=8, **_SETTINGS)
@given(scenario=opt_scenarios(presets=("tiny", "small"), max_seed=199))
def test_resumed_run_identical_to_uninterrupted(scenario):
    graph, steps = scenario
    kwargs = dict(n_steps=steps, iters=25, seed=2)
    uninterrupted = anneal(graph, **kwargs)
    with tempfile.TemporaryDirectory(prefix="opt-resume-") as tmp:
        journal = Path(tmp) / "opt.jsonl"
        try:
            anneal(graph, journal=journal, max_evaluations=3, **kwargs)
        except EvaluationBudgetExceeded:
            pass  # interrupted mid-search, journal keeps the work done
        resumed = anneal(graph, journal=journal, **kwargs)
    assert resumed.outcome() == uninterrupted.outcome()
