"""The joint (ordering, budget, scheduler) search space."""

import random

import pytest

from repro.core.ordering import order_muxes
from repro.core.pm_pass import PMOptions
from repro.opt.space import Candidate, SearchSpace
from repro.sched.timing import critical_path_length


@pytest.fixture
def gcd_space(gcd_graph):
    return SearchSpace.for_graph(gcd_graph, budgets=(5, 6, 7),
                                 schedulers=("list", "force_directed"))


class TestConstruction:
    def test_budgets_below_critical_path_rejected(self, gcd_graph):
        cp = critical_path_length(gcd_graph)
        with pytest.raises(ValueError, match="critical path"):
            SearchSpace.for_graph(gcd_graph, budgets=(cp - 1, cp))

    def test_needs_budgets_or_steps(self, gcd_graph):
        with pytest.raises(ValueError, match="budgets"):
            SearchSpace.for_graph(gcd_graph)

    def test_single_n_steps(self, gcd_graph):
        space = SearchSpace.for_graph(gcd_graph, n_steps=7)
        assert space.budgets == (7,)

    def test_budgets_deduped_and_sorted(self, gcd_graph):
        space = SearchSpace.for_graph(gcd_graph, budgets=(7, 5, 7, 6))
        assert space.budgets == (5, 6, 7)

    def test_size_counts_the_cross_product(self, gcd_space):
        # 6 muxes -> 720 orderings, x3 budgets x2 schedulers.
        assert gcd_space.size() == 720 * 3 * 2

    def test_empty_dimensions_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            SearchSpace(mux_ids=(), budgets=(), schedulers=("list",))
        with pytest.raises(ValueError, match="scheduler"):
            SearchSpace(mux_ids=(), budgets=(3,), schedulers=())


class TestCandidate:
    def test_key_is_stable_and_distinct(self):
        a = Candidate(order=(1, 2), n_steps=5, scheduler="list")
        b = Candidate(order=(2, 1), n_steps=5, scheduler="list")
        assert a.key() == Candidate(order=(1, 2), n_steps=5,
                                    scheduler="list").key()
        assert a.key() != b.key()
        assert a.key() != Candidate(order=(1, 2), n_steps=6,
                                    scheduler="list").key()

    def test_pm_options_pins_the_order(self):
        candidate = Candidate(order=(3, 1, 2), n_steps=5)
        options = candidate.pm_options()
        assert options.ordering == "given"
        assert options.given_order == (3, 1, 2)

    def test_pm_options_keeps_base_knobs(self):
        candidate = Candidate(order=(1,), n_steps=5)
        options = candidate.pm_options(PMOptions(partial=True))
        assert options.partial is True
        assert options.ordering == "given"


class TestSamplingAndMoves:
    def test_random_candidate_is_valid_and_seed_deterministic(
            self, gcd_space):
        first = gcd_space.random_candidate(random.Random(7))
        again = gcd_space.random_candidate(random.Random(7))
        assert first == again
        assert sorted(first.order) == sorted(gcd_space.mux_ids)
        assert first.n_steps in gcd_space.budgets
        assert first.scheduler in gcd_space.schedulers

    def test_neighbors_stay_inside_the_space(self, gcd_space):
        rng = random.Random(0)
        candidate = gcd_space.random_candidate(rng)
        for _ in range(200):
            candidate = gcd_space.neighbor(candidate, rng)
            assert sorted(candidate.order) == sorted(gcd_space.mux_ids)
            assert candidate.n_steps in gcd_space.budgets
            assert candidate.scheduler in gcd_space.schedulers

    def test_neighbor_moves_every_dimension_eventually(self, gcd_space):
        rng = random.Random(1)
        start = gcd_space.random_candidate(rng)
        seen_orders, seen_budgets, seen_scheds = set(), set(), set()
        candidate = start
        for _ in range(300):
            candidate = gcd_space.neighbor(candidate, rng)
            seen_orders.add(candidate.order)
            seen_budgets.add(candidate.n_steps)
            seen_scheds.add(candidate.scheduler)
        assert len(seen_orders) > 1
        assert seen_budgets == set(gcd_space.budgets)
        assert seen_scheds == set(gcd_space.schedulers)

    def test_trivial_space_neighbor_is_identity(self, abs_diff_graph):
        space = SearchSpace.for_graph(abs_diff_graph, n_steps=3)
        rng = random.Random(0)
        candidate = space.random_candidate(rng)
        # One mux, one budget, one scheduler: nothing to move.
        assert space.neighbor(candidate, rng) == candidate


class TestGreedySeeds:
    def test_covers_strategies_budgets_and_schedulers(self, gcd_graph,
                                                      gcd_space):
        seeds = gcd_space.greedy_candidates(gcd_graph)
        labels = [label for label, _ in seeds]
        assert len(seeds) == 3 * 3 * 2  # strategies x budgets x schedulers
        assert len(set(labels)) == len(labels)
        assert "savings@7/force_directed" in labels

    def test_seed_orders_match_the_strategies(self, gcd_graph, gcd_space):
        seeds = dict(gcd_space.greedy_candidates(gcd_graph))
        expected = tuple(order_muxes(gcd_graph, "output_first"))
        assert seeds["output_first@5/list"].order == expected

    def test_no_mux_graph_still_seeds(self, chain_graph):
        space = SearchSpace.for_graph(chain_graph, n_steps=3)
        seeds = space.greedy_candidates(chain_graph)
        assert len(seeds) == 3
        assert all(candidate.order == () for _, candidate in seeds)
