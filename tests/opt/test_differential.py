"""Differential hardening of the optimizer.

Two claims:

* wherever ``exhaustive_search`` is feasible (the paper suite and small
  generated family members), annealing *and* beam search reach the true
  optimum of the gated-weight objective;
* the designs the optimizer chooses are ordinary synthesis results — 50
  fuzz seeds synthesize the optimizer-chosen candidate and run it on
  all three simulation backends, which must agree bit-for-bit (outputs
  and full activity), with the PR-4 bounded fallback budget for
  circuits the vectorized backend legitimately refuses.
"""

import pytest

from repro.circuits import build
from repro.core.reordering import exhaustive_search, gated_weight
from repro.opt import anneal, beam_search
from repro.pipeline import Pipeline, run_pair
from repro.sched.timing import critical_path_length
from repro.sim.backend import create_engine
from repro.sim.engine import CompiledEngine
from repro.sim.simulator import RTLSimulator
from repro.sim.vectorized import VectorizationError, VectorizedEngine
from repro.sim.vectors import random_vectors

#: (spec, budget) — None means critical path + 1; all <= 6 muxes.
EXHAUSTIVE_POINTS = [
    ("dealer", 6),
    ("gcd", 7),
    ("vender", 6),
    ("gen:tiny:0", None),
    ("gen:tiny:1", None),
    ("gen:tiny:7", None),
    ("gen:small:3", None),
    ("gen:small:11", None),
    ("gen:branchy:2", 13),
    ("gen:deep:0", 15),
]


class TestExhaustiveParity:
    @pytest.mark.parametrize("spec,budget", EXHAUSTIVE_POINTS,
                             ids=[spec for spec, _ in EXHAUSTIVE_POINTS])
    def test_anneal_and_beam_reach_the_optimum(self, spec, budget):
        graph = build(spec)
        steps = budget if budget is not None \
            else critical_path_length(graph) + 1
        if len(graph.muxes()) > 6:
            pytest.skip(f"{spec} exceeds the exhaustive limit")
        optimum = gated_weight(exhaustive_search(graph, steps,
                                                 limit=6).best)
        annealed = anneal(graph, n_steps=steps, iters=300, seed=0,
                          restarts=3)
        beamed = beam_search(graph, n_steps=steps)
        assert annealed.best_score == pytest.approx(optimum, abs=1e-9), \
            f"anneal missed the optimum on {spec}@{steps}"
        assert beamed.best_score == pytest.approx(optimum, abs=1e-9), \
            f"beam missed the optimum on {spec}@{steps}"


def assert_backends_identical(design, vectors, power_management):
    """Vectorized == compiled == interpreter: outputs + full activity."""
    legacy = RTLSimulator(design, power_management=power_management)
    louts, lact = legacy.run_many(vectors)
    compiled = CompiledEngine(design, power_management=power_management)
    couts, cact = compiled.run_many(vectors)
    vector = VectorizedEngine(design, power_management=power_management)
    vouts, vact = vector.run_many(vectors)
    assert vouts == couts == louts
    assert vact == cact == lact


class TestOptimizedDesignFuzz:
    """50 seeds: synthesize the optimizer's pick, cross-check backends."""

    PLANS = [
        ("small", range(0, 25)),
        ("branchy", range(0, 15)),
        ("deep", range(0, 10)),
    ]
    #: Max tolerated VectorizationError refusals (PR-4 style bound).
    MAX_FALLBACKS = 3  # ~5% of 50

    _fallbacks: list[str] = []

    @pytest.mark.parametrize("preset,seeds", [
        (preset, tuple(seed_range)) for preset, seed_range in PLANS
    ], ids=[preset for preset, _ in PLANS])
    def test_chosen_designs_bit_identical_across_backends(self, preset,
                                                          seeds):
        pipeline = Pipeline()
        for seed in seeds:
            spec = f"gen:{preset}:{seed}"
            graph = build(spec)
            steps = critical_path_length(graph) + 1 + seed % 2
            chosen = beam_search(graph, n_steps=steps, beam_width=2)
            assert chosen.best_score >= chosen.best_greedy_score
            result = pipeline.run(graph, chosen.flow_config())
            assert result.pm.managed_count == \
                chosen.metrics["managed_muxes"]
            vectors = random_vectors(graph, 6, seed=seed)
            for pm in (True, False):
                try:
                    assert_backends_identical(result.design, vectors, pm)
                except VectorizationError:
                    self._record_fallback(spec, result.design, vectors, pm)

    def _record_fallback(self, spec, design, vectors, pm):
        engine = create_engine(design, power_management=pm, backend="auto")
        assert isinstance(engine, CompiledEngine), spec
        legacy = RTLSimulator(design, power_management=pm)
        assert engine.run_many(vectors) == legacy.run_many(vectors), spec
        self._fallbacks.append(spec)

    def test_zz_fallback_budget(self):
        """Runs last in the class: the refusal rate stays bounded."""
        assert len(self._fallbacks) <= self.MAX_FALLBACKS, self._fallbacks


class TestChosenDesignIsReal:
    def test_flow_config_synthesizes_the_reported_design(self, vender_graph):
        """The OptResult metrics and a fresh synthesis of its config
        agree — the optimizer reports what the flow actually builds."""
        result = anneal(vender_graph, n_steps=6, iters=120, seed=0)
        pair = run_pair(vender_graph, result.flow_config())
        assert pair.managed.pm.managed_count == \
            result.metrics["managed_muxes"]
        assert gated_weight(pair.managed.pm) == \
            pytest.approx(result.metrics["gated_weight"])
        assert pair.managed.static_report().reduction_pct == \
            pytest.approx(result.metrics["static_power"])
