"""The shared objective layer: metrics, scalarization, Pareto helpers."""

import pytest

from repro.core.pm_pass import apply_power_management
from repro.opt.objective import (
    METRICS,
    NEEDS_DESIGN,
    NEEDS_PAIR,
    NEEDS_PM,
    Objective,
    dominates,
    gated_weight,
    pareto_front,
    pm_score,
)


class TestGatedWeightHome:
    def test_reordering_reexports_the_same_function(self):
        """The refactor moved gated_weight; the old import must be it."""
        from repro.core import reordering

        assert reordering.gated_weight is gated_weight

    def test_core_package_reexport(self):
        import repro.core

        assert repro.core.gated_weight is gated_weight

    def test_value_unchanged_on_abs_diff(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        assert gated_weight(result) == pytest.approx(3.0)

    def test_pm_score_ties_break_on_managed_count(self, abs_diff_graph):
        result = apply_power_management(abs_diff_graph, 3)
        assert pm_score(result) == (gated_weight(result),
                                    result.managed_count)


class TestMetricRegistry:
    def test_every_metric_declares_sense_and_needs(self):
        for name, metric in METRICS.items():
            assert metric.name == name
            assert metric.sense in (1.0, -1.0)
            assert metric.needs in (NEEDS_PM, NEEDS_DESIGN, NEEDS_PAIR)

    def test_cheap_and_expensive_levels(self):
        assert METRICS["gated_weight"].needs == NEEDS_PM
        assert METRICS["area"].needs == NEEDS_DESIGN
        assert METRICS["sim_power"].needs == NEEDS_PAIR


class TestObjective:
    def test_default_is_gated_weight(self):
        objective = Objective()
        assert objective.metric_names == ("gated_weight",)
        assert objective.requires == NEEDS_PM

    def test_score_folds_sense_in(self):
        objective = Objective.parse("gated_weight,area=0.5")
        # area is minimized, so it enters negatively.
        assert objective.score({"gated_weight": 10.0, "area": 4.0}) == \
            pytest.approx(10.0 - 2.0)
        assert objective.requires == NEEDS_DESIGN

    def test_parse_roundtrip_through_signature(self):
        for spec in ("gated_weight", "sim_power,area=0.1",
                     "static_power,controller_literals=2"):
            objective = Objective.parse(spec)
            assert Objective.parse(objective.signature()) == objective

    def test_parse_passes_objective_through(self):
        objective = Objective.parse("managed_muxes")
        assert Objective.parse(objective) is objective

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            Objective.parse("gated_weight,nope")

    def test_bad_weight(self):
        with pytest.raises(ValueError, match="bad weight"):
            Objective.parse("area=heavy")

    def test_nonpositive_weight(self):
        with pytest.raises(ValueError, match="must be > 0"):
            Objective.parse("area=-1")

    def test_empty_spec(self):
        with pytest.raises(ValueError, match="empty objective"):
            Objective.parse(" , ")

    def test_empty_terms(self):
        with pytest.raises(ValueError, match="at least one metric"):
            Objective(terms=())


class TestPareto:
    def test_dominates_needs_strict_improvement(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert not dominates((1.0, 2.0), (1.0, 2.0))
        assert not dominates((1.0, 4.0), (2.0, 3.0))

    def test_front_keeps_ties_and_order(self):
        points = [("a", (1, 5)), ("b", (1, 5)), ("c", (2, 6)), ("d", (0, 9))]
        front = pareto_front(points, key=lambda p: p[1])
        assert [name for name, _ in front] == ["a", "b", "d"]

    def test_front_of_chain_is_single_point(self):
        points = [(3, 3), (2, 2), (1, 1)]
        assert pareto_front(points, key=lambda p: p) == [(1, 1)]

    def test_explore_pareto_uses_this_front(self):
        """ExplorationResult.pareto is wired onto the shared helper."""
        from repro.pipeline import explore

        result = explore(["dealer"], budgets=[4, 5, 6])
        front = result.pareto()
        assert 1 <= len(front.points) <= len(result.points)
        # A point dominated on every objective cannot survive.
        for point in front.points:
            assert not any(
                other.area <= point.area
                and other.n_steps <= point.n_steps
                and other.power_reduction_pct >= point.power_reduction_pct
                and (other.area, other.n_steps, other.power_reduction_pct)
                != (point.area, point.n_steps, point.power_reduction_pct)
                for other in result.points)
