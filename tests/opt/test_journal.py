"""compact_journal: dedup, garbage removal, atomicity, meta handling.

Plus the :class:`JournalWriter` durability policies: per-record fsync
("record") versus group commit ("batch") with its record-count and
wall-clock triggers, and the close/context-manager drain guarantee.
"""

import json

import pytest

from repro.opt.journal import (
    BATCH_RECORDS,
    BATCH_SECONDS,
    DURABILITY_LEVELS,
    JOURNAL_FORMAT,
    CompactionResult,
    JournalWriter,
    append_record,
    compact_journal,
    load_journal,
    open_journal,
)


@pytest.fixture
def journal(tmp_path):
    return tmp_path / "j.jsonl"


def lines(path):
    return path.read_text().splitlines()


class TestDurability:
    def test_levels_and_defaults(self):
        assert DURABILITY_LEVELS == ("record", "batch")
        assert BATCH_RECORDS >= 1
        assert BATCH_SECONDS > 0

    def test_unknown_durability_is_rejected(self, journal):
        with pytest.raises(ValueError, match="eventually"):
            open_journal(journal, "test", durability="eventually")

    def test_record_mode_never_leaves_a_pending_batch(self, journal):
        handle = open_journal(journal, "test", durability="record")
        for i in range(5):
            append_record(handle, f"k{i}", {"v": i})
            assert handle.pending == 0
        handle.close()
        assert len(load_journal(journal)) == 5

    def test_batch_mode_accumulates_then_group_commits(self, journal):
        handle = open_journal(journal, "test", durability="batch",
                              batch_records=4, batch_seconds=3600.0)
        for i in range(3):
            append_record(handle, f"k{i}", {"v": i})
        assert handle.pending == 3  # under both triggers: still buffered
        append_record(handle, "k3", {"v": 3})
        assert handle.pending == 0  # record-count trigger fired
        # Flushed-but-unsynced records are still readable: batch mode
        # only defers the fsync, not the write.
        append_record(handle, "k4", {"v": 4})
        assert handle.pending == 1
        assert len(load_journal(journal)) == 5
        handle.close()

    def test_wall_clock_trigger(self, journal):
        # batch_seconds=0 makes every append exceed the clock budget, so
        # batch mode degenerates to per-record sync — deterministically.
        handle = open_journal(journal, "test", durability="batch",
                              batch_records=10_000, batch_seconds=0.0)
        append_record(handle, "a", {"v": 1})
        assert handle.pending == 0
        handle.close()

    def test_close_drains_the_pending_batch(self, journal):
        handle = open_journal(journal, "test", durability="batch",
                              batch_records=10_000, batch_seconds=3600.0)
        append_record(handle, "a", {"v": 1})
        assert handle.pending == 1
        handle.close()
        assert handle.closed
        handle.close()  # idempotent
        assert load_journal(journal)["a"]["v"] == 1

    def test_context_manager_drains_too(self, journal):
        with open_journal(journal, "test", durability="batch",
                          batch_records=10_000,
                          batch_seconds=3600.0) as handle:
            append_record(handle, "a", {"v": 1})
            assert handle.pending == 1
        assert handle.closed

    def test_writer_wraps_any_handle(self, tmp_path):
        path = tmp_path / "raw.jsonl"
        with open(path, "w", encoding="utf-8") as raw:
            writer = JournalWriter(raw, durability="record")
            writer.append("a", {"v": 1})
            assert writer.fileno() == raw.fileno()
        assert load_journal(path)["a"]["v"] == 1


class TestCompaction:
    def test_keeps_last_record_per_key(self, journal):
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        append_record(handle, "b", {"v": 2})
        append_record(handle, "a", {"v": 3})  # supersedes the first "a"
        handle.close()
        outcome = compact_journal(journal)
        assert outcome.kept == 2
        assert outcome.dropped == 1
        assert outcome.bytes_after < outcome.bytes_before
        assert outcome.changed
        records = load_journal(journal)
        assert records["a"]["v"] == 3
        assert records["b"]["v"] == 2

    def test_drops_torn_tail_and_garbage(self, journal):
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        handle.close()
        with open(journal, "a") as raw:
            raw.write("not json at all\n")
            raw.write('{"key": "b", "v"')  # torn write, no newline
        outcome = compact_journal(journal)
        assert outcome.kept == 1
        assert outcome.dropped == 2
        assert load_journal(journal) == {"a": {"key": "a", "v": 1}}

    def test_counts_keyless_non_meta_objects_as_dropped(self, journal):
        # e.g. a progress-sidecar line that leaked into a journal.
        journal.write_text('{"format": 1, "kind": "test"}\n'
                           '{"step": 0, "score": 1.5}\n'
                           '{"key": "a", "v": 1}\n')
        outcome = compact_journal(journal)
        assert outcome.kept == 1
        assert outcome.dropped == 1

    def test_preserves_meta_kind(self, journal):
        handle = open_journal(journal, "sweep-points")
        append_record(handle, "a", {"v": 1})
        handle.close()
        compact_journal(journal)
        meta = json.loads(lines(journal)[0])
        assert meta == {"format": JOURNAL_FORMAT, "kind": "sweep-points"}

    def test_kind_override_and_missing_meta(self, journal):
        # A headerless journal gains a meta line; kind= wins over none.
        journal.write_text('{"key": "a", "v": 1}\n')
        compact_journal(journal, kind="adopted")
        meta = json.loads(lines(journal)[0])
        assert meta["kind"] == "adopted"
        assert load_journal(journal)["a"]["v"] == 1

    def test_missing_journal_is_a_noop(self, tmp_path):
        outcome = compact_journal(tmp_path / "absent.jsonl")
        assert outcome == CompactionResult(0, 0, 0, 0)
        assert not outcome.changed
        assert not (tmp_path / "absent.jsonl").exists()

    def test_append_after_compaction_continues_the_journal(self, journal):
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        append_record(handle, "a", {"v": 2})
        handle.close()
        compact_journal(journal)
        handle = open_journal(journal, "test")
        append_record(handle, "b", {"v": 3})
        handle.close()
        records = load_journal(journal)
        assert records["a"]["v"] == 2 and records["b"]["v"] == 3
        # Still exactly one meta line.
        metas = [line for line in lines(journal) if "format" in line]
        assert len(metas) == 1

    def test_no_temp_files_left_behind(self, journal):
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        handle.close()
        compact_journal(journal)
        leftovers = list(journal.parent.glob(".compact-*"))
        assert leftovers == []

    def test_open_handle_writes_would_be_stranded(self, journal):
        """Document the inode hazard the serve maintenance pass guards
        against: appends through a handle opened before compaction land
        on the replaced inode and are lost."""
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        compact_journal(journal)          # replaces the inode
        append_record(handle, "b", {"v": 2})  # lands on the old inode
        handle.close()
        assert "b" not in load_journal(journal)
