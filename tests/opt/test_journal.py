"""compact_journal: dedup, garbage removal, atomicity, meta handling."""

import json

import pytest

from repro.opt.journal import (
    JOURNAL_FORMAT,
    CompactionResult,
    append_record,
    compact_journal,
    load_journal,
    open_journal,
)


@pytest.fixture
def journal(tmp_path):
    return tmp_path / "j.jsonl"


def lines(path):
    return path.read_text().splitlines()


class TestCompaction:
    def test_keeps_last_record_per_key(self, journal):
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        append_record(handle, "b", {"v": 2})
        append_record(handle, "a", {"v": 3})  # supersedes the first "a"
        handle.close()
        outcome = compact_journal(journal)
        assert outcome.kept == 2
        assert outcome.dropped == 1
        assert outcome.bytes_after < outcome.bytes_before
        assert outcome.changed
        records = load_journal(journal)
        assert records["a"]["v"] == 3
        assert records["b"]["v"] == 2

    def test_drops_torn_tail_and_garbage(self, journal):
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        handle.close()
        with open(journal, "a") as raw:
            raw.write("not json at all\n")
            raw.write('{"key": "b", "v"')  # torn write, no newline
        outcome = compact_journal(journal)
        assert outcome.kept == 1
        assert outcome.dropped == 2
        assert load_journal(journal) == {"a": {"key": "a", "v": 1}}

    def test_counts_keyless_non_meta_objects_as_dropped(self, journal):
        # e.g. a progress-sidecar line that leaked into a journal.
        journal.write_text('{"format": 1, "kind": "test"}\n'
                           '{"step": 0, "score": 1.5}\n'
                           '{"key": "a", "v": 1}\n')
        outcome = compact_journal(journal)
        assert outcome.kept == 1
        assert outcome.dropped == 1

    def test_preserves_meta_kind(self, journal):
        handle = open_journal(journal, "sweep-points")
        append_record(handle, "a", {"v": 1})
        handle.close()
        compact_journal(journal)
        meta = json.loads(lines(journal)[0])
        assert meta == {"format": JOURNAL_FORMAT, "kind": "sweep-points"}

    def test_kind_override_and_missing_meta(self, journal):
        # A headerless journal gains a meta line; kind= wins over none.
        journal.write_text('{"key": "a", "v": 1}\n')
        compact_journal(journal, kind="adopted")
        meta = json.loads(lines(journal)[0])
        assert meta["kind"] == "adopted"
        assert load_journal(journal)["a"]["v"] == 1

    def test_missing_journal_is_a_noop(self, tmp_path):
        outcome = compact_journal(tmp_path / "absent.jsonl")
        assert outcome == CompactionResult(0, 0, 0, 0)
        assert not outcome.changed
        assert not (tmp_path / "absent.jsonl").exists()

    def test_append_after_compaction_continues_the_journal(self, journal):
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        append_record(handle, "a", {"v": 2})
        handle.close()
        compact_journal(journal)
        handle = open_journal(journal, "test")
        append_record(handle, "b", {"v": 3})
        handle.close()
        records = load_journal(journal)
        assert records["a"]["v"] == 2 and records["b"]["v"] == 3
        # Still exactly one meta line.
        metas = [line for line in lines(journal) if "format" in line]
        assert len(metas) == 1

    def test_no_temp_files_left_behind(self, journal):
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        handle.close()
        compact_journal(journal)
        leftovers = list(journal.parent.glob(".compact-*"))
        assert leftovers == []

    def test_open_handle_writes_would_be_stranded(self, journal):
        """Document the inode hazard the serve maintenance pass guards
        against: appends through a handle opened before compaction land
        on the replaced inode and are lost."""
        handle = open_journal(journal, "test")
        append_record(handle, "a", {"v": 1})
        compact_journal(journal)          # replaces the inode
        append_record(handle, "b", {"v": 2})  # lands on the old inode
        handle.close()
        assert "b" not in load_journal(journal)
