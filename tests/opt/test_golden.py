"""Golden regression: the optimizer's paper-benchmark picks are pinned.

Regenerating after an intended change: see ``tests/opt/update_golden.py``.
"""

import json

import pytest

from tests.opt.update_golden import GOLDEN_PATH, generate_snapshot


@pytest.fixture(scope="module")
def fresh():
    return generate_snapshot()


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), \
        "missing golden snapshot; run tests/opt/update_golden.py"
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenOptimizer:
    def test_same_points_are_pinned(self, fresh, golden):
        assert sorted(fresh["points"]) == sorted(golden["points"])
        assert fresh["driver_kwargs"] == golden["driver_kwargs"]

    def test_chosen_orderings_unchanged(self, fresh, golden):
        for name, point in golden["points"].items():
            assert fresh["points"][name]["outcome"]["order"] == \
                point["outcome"]["order"], name
            assert fresh["points"][name]["outcome"]["score"] == \
                pytest.approx(point["outcome"]["score"]), name

    def test_table_style_numbers_unchanged(self, fresh, golden):
        for name, point in golden["points"].items():
            measured = fresh["points"][name]["design"]
            for field, value in point["design"].items():
                assert measured[field] == pytest.approx(value), \
                    f"{name}: {field}"

    def test_search_outcome_fully_pinned(self, fresh, golden):
        """The entire resume-invariant outcome dict matches, greedy
        scores and improvement history included."""
        for name, point in golden["points"].items():
            assert fresh["points"][name]["outcome"] == point["outcome"], \
                name
