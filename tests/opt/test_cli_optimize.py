"""The ``repro optimize`` subcommand and ``repro explore --search``."""

import json

import pytest

from repro.cli import main


class TestOptimizeCommand:
    def test_default_anneal_run(self, capsys):
        assert main(["optimize", "gcd", "--steps", "7",
                     "--iters", "40"]) == 0
        out = capsys.readouterr().out
        assert "anneal on 'gcd'" in out
        assert "greedy" in out and "best" in out
        assert "chosen design:" in out

    def test_beam_driver_and_budgets(self, capsys):
        assert main(["optimize", "dealer", "--search", "beam",
                     "--budgets", "5,6", "--beam-width", "2"]) == 0
        out = capsys.readouterr().out
        assert "beam on 'dealer'" in out

    def test_weighted_objective(self, capsys):
        assert main(["optimize", "dealer", "--steps", "6",
                     "--objective", "gated_weight,area=0.01",
                     "--iters", "10"]) == 0
        assert "chosen design:" in capsys.readouterr().out

    def test_bad_objective_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit, match="unknown metric"):
            main(["optimize", "dealer", "--steps", "6",
                  "--objective", "nonsense"])

    def test_bad_budgets_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="--budgets"):
            main(["optimize", "dealer", "--budgets", "five"])

    def test_infeasible_budget_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="critical path"):
            main(["optimize", "gcd", "--steps", "2", "--iters", "5"])

    def test_store_and_resume_flags(self, capsys, tmp_path):
        journal = tmp_path / "opt.jsonl"
        args = ["optimize", "gcd", "--steps", "7", "--iters", "30",
                "--store", str(tmp_path / "store"), "--resume",
                str(journal)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resumed from journal" in out
        meta = json.loads(journal.read_text().splitlines()[0])
        assert meta["kind"] == "opt-journal"

    def test_partial_flag_reaches_the_synthesized_design(self, capsys,
                                                         tmp_path):
        """--partial must shape both the search and the final synthesis
        of the chosen design (regression: the report used to rebuild
        the design with partial gating off)."""
        source = tmp_path / "pgate.circ"
        source.write_text("""
circuit pgate {
    input a, b, c, d;
    x = a + b;
    y = x * c;
    c0 = a > d;
    output out = c0 ? y : d;
}
""")
        assert main(["optimize", str(source), "--steps", "3",
                     "--iters", "10"]) == 0
        assert "chosen design: 0 managed muxes" in capsys.readouterr().out
        assert main(["optimize", str(source), "--steps", "3",
                     "--iters", "10", "--partial"]) == 0
        assert "chosen design: 1 managed muxes" in capsys.readouterr().out

    def test_gen_family_spec(self, capsys):
        assert main(["optimize", "gen:branchy:2", "--budgets", "13",
                     "--search", "beam"]) == 0
        out = capsys.readouterr().out
        assert "gen:branchy:2" in out
        # The pinned seed where search beats every greedy strategy.
        assert "+1.2500 over greedy" in out


class TestExploreSearchFlag:
    def test_search_mode_prints_one_point_per_circuit(self, capsys):
        assert main(["explore", "dealer", "gcd", "--budgets", "6,7",
                     "--search", "beam"]) == 0
        out = capsys.readouterr().out
        assert "beam[gated_weight]" in out
        assert out.count("beam[gated_weight]") == 2
        assert "best point:" in out

    def test_infeasible_budget_is_a_clean_error(self):
        """Search mode reports bad budgets as ValueError; the CLI must
        still exit cleanly, like grid mode does."""
        with pytest.raises(SystemExit, match="critical path"):
            main(["explore", "gcd", "--budgets", "2", "--search",
                  "anneal"])
