"""Golden optimizer snapshot helpers + regeneration script.

The snapshot pins, at a fixed driver configuration and seed, the
ordering the annealer selects for each paper benchmark at its Table III
budget, plus the Table II/III-style numbers of the design that ordering
synthesizes (managed MUXes, static datapath reduction, area, simulated
total reduction).  When an *intended* optimizer or scoring change
lands, regenerate with::

    PYTHONPATH=src python tests/opt/update_golden.py

then review the diff like any other code change — ordering churn is
always a conscious decision.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "golden" / "optimizer.json"

#: (circuit, control steps) — the paper's Table III synthesis points.
SNAPSHOT_POINTS = (("dealer", 6), ("gcd", 7), ("vender", 6))

#: The pinned driver configuration (deterministic per seed).
DRIVER_KWARGS = dict(iters=200, seed=1996, restarts=2)

SIM_VECTORS = 256
SIM_SEED = 1996


def generate_snapshot() -> dict[str, object]:
    """The full golden payload for every snapshot point."""
    from repro.circuits import build
    from repro.opt import anneal
    from repro.pipeline import Pipeline, run_pair
    from repro.power.simulated import compare_designs

    points: dict[str, object] = {}
    for circuit, steps in SNAPSHOT_POINTS:
        graph = build(circuit)
        result = anneal(graph, n_steps=steps, **DRIVER_KWARGS)
        pair = run_pair(graph, result.flow_config(),
                        pipeline=Pipeline())
        comparison = compare_designs(pair.baseline.design,
                                     pair.managed.design,
                                     n_vectors=SIM_VECTORS, seed=SIM_SEED)
        points[f"{circuit}@{steps}"] = {
            "outcome": result.outcome(),
            "design": {
                "managed_muxes": pair.managed.pm.managed_count,
                "static_reduction_pct": round(
                    pair.managed.static_report().reduction_pct, 6),
                "area_orig": pair.baseline.design.area().total,
                "area_new": pair.managed.design.area().total,
                "area_increase": round(pair.area_increase, 6),
                "sim_reduction_pct": round(comparison.reduction_pct, 6),
            },
        }
    return {"driver": "anneal", "driver_kwargs": DRIVER_KWARGS,
            "sim_vectors": SIM_VECTORS, "sim_seed": SIM_SEED,
            "points": points}


def main() -> int:
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    payload = generate_snapshot()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(payload['points'])} points)")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    sys.exit(main())
