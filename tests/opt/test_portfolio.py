"""Island-model portfolio driver: determinism, budgets, resume, wiring.

The load-bearing property is that rounds — not workers — are the unit
of determinism: the outcome is a pure function of (configuration, seed,
islands), worker scheduling only changes concurrency, and a journal
resume lands on the uninterrupted run's outcome exactly.
"""

import json

import pytest

from repro.circuits import build
from repro.core.reordering import gated_weight, strategy_search
from repro.opt import optimize
from repro.opt.portfolio import ISLAND_PROFILES, IslandState, portfolio
from repro.opt.search import SearchSpec
from repro.pipeline.explore import explore


@pytest.fixture(scope="module")
def branchy_graph():
    return build("gen:branchy:8")


BASE = dict(n_steps=12, iters=60, seed=3, islands=3, workers=1)


class TestDeterminism:
    def test_same_config_same_outcome(self, branchy_graph):
        assert portfolio(branchy_graph, **BASE).outcome() == \
            portfolio(branchy_graph, **BASE).outcome()

    def test_workers_do_not_change_the_outcome(self, branchy_graph):
        """Worker-scheduling independence: islands pinned, worker count
        varied — byte-identical outcome including the Pareto front."""
        serial = portfolio(branchy_graph, **{**BASE, "workers": 1})
        pooled = portfolio(branchy_graph, **{**BASE, "workers": 2})
        assert serial.outcome() == pooled.outcome()

    def test_outcome_is_json_compatible(self, branchy_graph):
        outcome = portfolio(branchy_graph, **BASE).outcome()
        assert json.loads(json.dumps(outcome)) == outcome
        assert "pareto" in outcome


class TestQuality:
    def test_at_least_best_greedy(self, branchy_graph):
        best_greedy = gated_weight(strategy_search(branchy_graph, 12).best)
        result = portfolio(branchy_graph, **BASE)
        assert result.best_score >= best_greedy - 1e-9
        assert result.driver == "portfolio"

    def test_archive_carries_best_and_counters(self, branchy_graph):
        result = portfolio(branchy_graph, **BASE)
        archive = result.archive
        assert archive is not None
        assert archive.best().score == pytest.approx(result.best_score)
        assert archive.counters["evaluations"] == result.evaluations
        assert result.memo_hits + result.store_hits == result.reused

    def test_multi_objective_front(self, branchy_graph):
        result = portfolio(branchy_graph,
                           objective="gated_weight,area=0.05",
                           budgets=(12, 13, 14), **{k: v for k, v in
                                                    BASE.items()
                                                    if k != "n_steps"})
        front = result.archive.front()
        assert len(front) >= 2  # the area trade-off is real here
        labels = {entry.label for entry in front}
        assert labels  # provenance labels survive the merge
        assert result.outcome()["pareto"] == [
            entry.to_dict() for entry in front]


class TestBudgets:
    def test_zero_time_budget_returns_the_greedy_floor(self, branchy_graph):
        result = portfolio(branchy_graph, n_steps=12, iters=None,
                           time_budget=0.0, seed=0, workers=1)
        best_greedy = max(score for _, score in result.greedy_scores)
        assert result.best_score == pytest.approx(best_greedy)

    def test_max_evaluations_stops_gracefully(self, branchy_graph):
        result = portfolio(branchy_graph, n_steps=12, iters=None,
                           max_evaluations=25, seed=0, workers=1,
                           islands=2)
        assert result.evaluations <= 25
        assert result.best_score >= max(
            score for _, score in result.greedy_scores) - 1e-9

    def test_unbounded_portfolio_is_rejected(self, branchy_graph):
        with pytest.raises(ValueError, match="unbounded portfolio"):
            portfolio(branchy_graph, n_steps=12, iters=None)

    def test_bad_shape_arguments(self, branchy_graph):
        with pytest.raises(ValueError, match="workers"):
            portfolio(branchy_graph, n_steps=12, workers=0)
        with pytest.raises(ValueError, match="islands"):
            portfolio(branchy_graph, n_steps=12, islands=0)
        with pytest.raises(ValueError, match="migration_every"):
            portfolio(branchy_graph, n_steps=12, migration_every=0)


class TestResume:
    def test_interrupted_resume_lands_on_the_uninterrupted_outcome(
            self, branchy_graph, tmp_path):
        journal = tmp_path / "portfolio.jsonl"
        kwargs = dict(n_steps=12, iters=60, seed=3, islands=3, workers=1)
        uninterrupted = portfolio(branchy_graph, **kwargs)

        # Interrupt: the evaluation cap ends the run after a partial
        # journal exists (gracefully — budgets never raise here).
        partial = portfolio(branchy_graph, journal=journal,
                            max_evaluations=12, **kwargs)
        assert partial.evaluations <= 12

        resumed = portfolio(branchy_graph, journal=journal, **kwargs)
        assert resumed.outcome() == uninterrupted.outcome()
        # Warm-resume counters: replays and memo hits are visible and
        # aggregated across islands.
        assert resumed.resumed > 0
        assert resumed.journal_replays == resumed.resumed
        assert resumed.archive.counters["journal_replays"] > 0
        assert resumed.evaluations < uninterrupted.evaluations

    def test_warm_replay_costs_nothing_new(self, branchy_graph, tmp_path):
        journal = tmp_path / "portfolio.jsonl"
        kwargs = dict(n_steps=12, iters=40, seed=1, islands=2, workers=1)
        first = portfolio(branchy_graph, journal=journal, **kwargs)
        replay = portfolio(branchy_graph, journal=journal, **kwargs)
        assert replay.outcome() == first.outcome()
        assert replay.evaluations == 0
        assert replay.resumed > 0
        assert replay.memo_hits > 0  # islands served from the preload


class TestDispatch:
    def test_optimize_accepts_portfolio_spec(self, branchy_graph):
        spec = SearchSpec(driver="portfolio", iters=40, seed=3, workers=1)
        result = optimize(branchy_graph, spec, n_steps=12, islands=2)
        assert result.driver == "portfolio"
        assert result.archive is not None

    def test_unknown_kwargs_are_rejected_with_the_valid_set(
            self, branchy_graph):
        with pytest.raises(ValueError) as err:
            optimize(branchy_graph, "portfolio", n_steps=12, bogus=1)
        message = str(err.value)
        assert "bogus" in message and "portfolio" in message
        assert "workers" in message  # the valid options are listed
        with pytest.raises(ValueError, match="workers_typo") as err:
            # workers is a portfolio knob, not an anneal knob.
            optimize(branchy_graph, "anneal", n_steps=12, iters=5,
                     workers_typo=2)
        assert "anneal" in str(err.value)

    def test_spec_knobs_for_other_drivers_are_dropped(self, branchy_graph):
        # One SearchSpec fits every driver: anneal ignores the spec's
        # workers field rather than crashing on it.
        spec = SearchSpec(driver="anneal", iters=10, workers=8)
        result = optimize(branchy_graph, spec, n_steps=12)
        assert result.driver == "anneal"

    def test_time_budget_flows_from_the_spec(self, branchy_graph):
        spec = SearchSpec(driver="portfolio", iters=None, workers=1,
                          time_budget=0.0)
        result = optimize(branchy_graph, spec, n_steps=12)
        assert result.evaluations <= len(result.greedy_scores)


class TestExploreWiring:
    def test_explore_search_portfolio(self):
        result = explore(["gcd"], budgets=(7,), workers=1,
                         search=SearchSpec(driver="portfolio", iters=30,
                                           seed=2, workers=1))
        assert len(result.points) == 1
        point = result.points[0]
        assert point.circuit == "gcd"
        assert point.config_label == "portfolio[gated_weight]"


class TestProfiles:
    def test_profiles_cycle_and_state_defaults(self):
        assert any(p["kind"] == "random" for p in ISLAND_PROFILES)
        assert any(p["kind"] == "anneal" for p in ISLAND_PROFILES)
        state = IslandState()
        assert state.current is None
        assert state.score == float("-inf")
