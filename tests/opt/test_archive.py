"""NSGA-II layer: nondominated sort, crowding, and the ParetoArchive.

The sort is pinned against the brute-force :func:`pareto_front` filter
(peel fronts by repeated filtering), crowding-distance tie-breaking is
pinned deterministic, and the archive invariants (always a front,
key-stable ties, coverage) are property-tested over random vector
clouds.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opt.archive import (
    ArchiveEntry,
    ParetoArchive,
    crowding_distances,
    nondominated_sort,
    nsga_select,
)
from repro.opt.objective import Objective, dominates, pareto_front
from repro.opt.space import Candidate

_SETTINGS = dict(deadline=None)

vectors = st.lists(
    st.tuples(st.integers(min_value=-20, max_value=20),
              st.integers(min_value=-20, max_value=20)),
    min_size=0, max_size=24)


def brute_force_fronts(vecs):
    """Peel Pareto fronts by repeated brute-force filtering."""
    remaining = list(enumerate(vecs))
    fronts = []
    while remaining:
        front = pareto_front(remaining, key=lambda pair: pair[1])
        fronts.append(sorted(i for i, _ in front))
        taken = {i for i, _ in front}
        remaining = [pair for pair in remaining if pair[0] not in taken]
    return fronts


class TestNondominatedSort:
    @settings(max_examples=150, **_SETTINGS)
    @given(vecs=vectors)
    def test_matches_brute_force_front_peeling(self, vecs):
        fronts = [sorted(front) for front in nondominated_sort(vecs)]
        assert fronts == brute_force_fronts(vecs)

    @settings(max_examples=80, **_SETTINGS)
    @given(vecs=vectors)
    def test_partitions_and_respects_dominance(self, vecs):
        fronts = nondominated_sort(vecs)
        flat = [i for front in fronts for i in front]
        assert sorted(flat) == list(range(len(vecs)))
        # Nothing inside a front dominates a peer; every member of a
        # later front is dominated by someone in the previous front.
        for rank, front in enumerate(fronts):
            for i in front:
                assert not any(dominates(vecs[j], vecs[i])
                               for j in front if j != i)
                if rank:
                    assert any(dominates(vecs[j], vecs[i])
                               for j in fronts[rank - 1])

    def test_empty(self):
        assert nondominated_sort([]) == []


class TestCrowdingDistances:
    def test_boundaries_are_infinite(self):
        distances = crowding_distances([(0, 4), (1, 2), (2, 1), (4, 0)])
        assert distances[0] == math.inf
        assert distances[3] == math.inf
        assert all(d > 0 for d in distances)

    def test_interior_neighbor_gaps(self):
        # One dimension, points 0, 1, 10: the middle point's distance is
        # the normalized neighbor gap (10 - 0) / (10 - 0) = 1.
        distances = crowding_distances([(0,), (1,), (10,)])
        assert distances == [math.inf, pytest.approx(1.0), math.inf]

    def test_duplicate_vectors_do_not_divide_by_zero(self):
        distances = crowding_distances([(1, 1), (1, 1), (1, 1)])
        assert len(distances) == 3

    @settings(max_examples=60, **_SETTINGS)
    @given(vecs=vectors)
    def test_deterministic(self, vecs):
        assert crowding_distances(vecs) == crowding_distances(vecs)

    @settings(max_examples=60, **_SETTINGS)
    @given(vecs=vectors.filter(lambda v: len(v) >= 3), k=st.integers(1, 6))
    def test_nsga_select_is_deterministic_and_rank_first(self, vecs, k):
        picked = nsga_select(vecs, k)
        assert picked == nsga_select(vecs, k)
        assert len(picked) == min(k, len(vecs))
        # Selection never skips a better-ranked front: anything picked
        # from front r implies every earlier front is fully picked.
        fronts = nondominated_sort(vecs)
        chosen = set(picked)
        for earlier, front in zip(fronts, fronts[1:]):
            if chosen & set(front):
                assert set(earlier) <= chosen


def _candidate(order, n_steps=5):
    return Candidate(order=tuple(order), n_steps=n_steps)


def _archive(spec="gated_weight,area=1"):
    return ParetoArchive(Objective.parse(spec))


class TestParetoArchive:
    def test_offer_keeps_only_nondominated(self):
        archive = _archive()
        # gated_weight maximized, area minimized.
        assert archive.offer(_candidate([1]), {"gated_weight": 1, "area": 9})
        assert archive.offer(_candidate([2]), {"gated_weight": 2, "area": 5})
        # Dominated by [2] on both axes: rejected, front unchanged.
        assert not archive.offer(_candidate([3]),
                                 {"gated_weight": 1, "area": 6})
        assert {e.candidate.key() for e in archive.front()} == {
            _candidate([2]).key()}

    def test_incomparable_points_coexist(self):
        archive = _archive()
        archive.offer(_candidate([1]), {"gated_weight": 5, "area": 9})
        archive.offer(_candidate([2]), {"gated_weight": 2, "area": 3})
        assert len(archive) == 2

    def test_vector_tie_keeps_smallest_candidate_key(self):
        archive = _archive()
        archive.offer(_candidate([2, 1]), {"gated_weight": 1, "area": 1})
        # Same objective vector, lexicographically smaller key: swaps in.
        assert archive.offer(_candidate([1, 2]),
                             {"gated_weight": 1, "area": 1})
        assert not archive.offer(_candidate([2, 1]),
                                 {"gated_weight": 1, "area": 1})
        assert [e.candidate.key() for e in archive.front()] == [
            _candidate([1, 2]).key()]

    def test_best_is_scalar_best(self):
        archive = _archive()
        archive.offer(_candidate([1]), {"gated_weight": 5, "area": 9})
        archive.offer(_candidate([2]), {"gated_weight": 2, "area": 3})
        best = archive.best()
        assert best.candidate.key() == _candidate([2]).key() or \
            best.score == max(e.score for e in archive.front())

    def test_max_size_truncates_by_nsga(self):
        archive = ParetoArchive(Objective.parse("gated_weight,area=1"),
                                max_size=2)
        for i in range(5):
            # Higher gating always costs more area: all incomparable.
            archive.offer(_candidate([i + 1]),
                          {"gated_weight": i, "area": i})
        assert len(archive) == 2

    def test_covered_by(self):
        small, big = _archive(), _archive()
        small.offer(_candidate([1]), {"gated_weight": 1, "area": 5})
        big.offer(_candidate([2]), {"gated_weight": 2, "area": 4})
        assert small.covered_by(big)
        assert not big.covered_by(small)
        # Equal vectors count as covered.
        twin = _archive()
        twin.offer(_candidate([3]), {"gated_weight": 2, "area": 4})
        assert big.covered_by(twin) and twin.covered_by(big)

    def test_roundtrip_dict(self):
        archive = _archive()
        archive.offer(_candidate([1]), {"gated_weight": 5, "area": 9},
                      label="seed")
        archive.evaluations = 7
        archive.memo_hits = 3
        clone = ParetoArchive.from_dict(archive.to_dict())
        assert clone.to_dict() == archive.to_dict()
        assert clone.counters["evaluations"] == 7
        assert clone.counters["memo_hits"] == 3

    @settings(max_examples=60, **_SETTINGS)
    @given(vecs=st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)),
        min_size=1, max_size=16))
    def test_archive_is_always_a_front(self, vecs):
        archive = _archive()
        for i, (gw, area) in enumerate(vecs):
            archive.offer(_candidate([i + 1]),
                          {"gated_weight": gw, "area": area})
        front = archive.front()
        assert front  # never empty once something was offered
        for entry in front:
            assert not any(dominates(other.vector, entry.vector)
                           for other in front if other is not entry)
        # Every offered point is dominated-or-matched by the front.
        for gw, area in vecs:
            vector = (-float(gw), float(area))
            assert any(e.vector == vector or dominates(e.vector, vector)
                       for e in front)

    def test_entry_roundtrip(self):
        entry = ArchiveEntry(
            candidate=_candidate([1, 2]),
            metrics={"gated_weight": 1.0, "area": 2.0},
            score=1.0, vector=(-1.0, 2.0), label="island2")
        assert ArchiveEntry.from_dict(entry.to_dict()) == entry
