"""Search drivers: greedy floor, determinism, resume, cache-awareness."""

import json

import pytest

from repro.circuits import build
from repro.core.reordering import exhaustive_search, gated_weight
from repro.opt.evaluate import EvaluationBudgetExceeded, Evaluator
from repro.opt.search import (
    DRIVERS,
    SearchSpec,
    anneal,
    beam_search,
    optimize,
    random_search,
)
from repro.pipeline import DiskArtifactCache, explore


def conflict_graph():
    """The §IV-A order-dependence example from tests/core/test_reordering:
    output-first ordering wastes the slack the multiplier cone needs."""
    from repro.ir.builder import GraphBuilder

    b = GraphBuilder("conflict")
    x, y = b.input("x"), b.input("y")
    c2 = b.gt(y, 0, name="c2")
    big = b.mul(x, y, name="big")
    m2 = b.mux(c2, big, x, name="m2")
    mid = b.add(m2, y, name="mid")
    c1 = b.gt(x, 0, name="c1")
    small = b.sub(x, y, name="small")
    m1 = b.mux(c1, small, mid, name="m1")
    b.output(m1, "out")
    return b.build()


class TestDriverQuality:
    @pytest.mark.parametrize("driver", sorted(DRIVERS))
    def test_never_worse_than_best_greedy(self, driver, small_circuit):
        result = optimize(small_circuit, driver, n_steps=7, iters=30)
        assert result.best_score >= result.best_greedy_score
        assert result.improvement_over_greedy >= 0.0

    @pytest.mark.parametrize("driver", sorted(DRIVERS))
    def test_finds_the_conflict_optimum(self, driver):
        """Every driver escapes the greedy trap of the conflict graph."""
        graph = conflict_graph()
        optimum = gated_weight(exhaustive_search(graph, 5).best)
        result = optimize(graph, driver, n_steps=5, iters=60, seed=0)
        assert result.best_score == pytest.approx(optimum)

    def test_anneal_searches_the_budget_dimension(self, gcd_graph):
        result = anneal(gcd_graph, budgets=(5, 6, 7), iters=120, seed=0)
        best_at_best_budget = gated_weight(
            exhaustive_search(gcd_graph, 7, limit=6).best)
        assert result.best_score == pytest.approx(best_at_best_budget)

    def test_scheduler_dimension_reaches_the_result(self, dealer_graph):
        result = anneal(dealer_graph, n_steps=6,
                        schedulers=("force_directed",), iters=10)
        assert result.best.scheduler == "force_directed"
        assert result.flow_config().scheduler == "force_directed"

    def test_no_mux_graph(self, chain_graph):
        result = anneal(chain_graph, n_steps=3, iters=10)
        assert result.best.order == ()
        assert result.best_score == 0.0


class TestDeterminismAndResult:
    def test_same_seed_same_outcome(self, vender_graph):
        first = anneal(vender_graph, n_steps=6, iters=60, seed=3)
        again = anneal(vender_graph, n_steps=6, iters=60, seed=3)
        assert first.outcome() == again.outcome()

    def test_outcome_is_json_compatible(self, gcd_graph):
        result = beam_search(gcd_graph, n_steps=7, beam_width=2)
        assert json.loads(json.dumps(result.outcome())) == result.outcome()

    def test_history_tracks_improvements(self, gcd_graph):
        result = anneal(gcd_graph, n_steps=7, iters=40, seed=0)
        scores = [score for _, score in result.history]
        assert scores == sorted(scores)
        assert scores[-1] == result.best_score

    def test_table_mentions_greedy_and_best(self, gcd_graph):
        text = anneal(gcd_graph, n_steps=7, iters=10, seed=0).table()
        assert "greedy" in text and "best" in text

    def test_flow_config_pins_the_chosen_order(self, gcd_graph):
        result = anneal(gcd_graph, n_steps=7, iters=20, seed=0)
        config = result.flow_config()
        assert config.pm.ordering == "given"
        assert config.pm.given_order == result.best.order
        assert config.n_steps == result.best.n_steps

    def test_driver_validation(self, gcd_graph):
        with pytest.raises(ValueError, match="unknown search driver"):
            optimize(gcd_graph, "tabu", n_steps=7)
        with pytest.raises(ValueError, match="restarts"):
            anneal(gcd_graph, n_steps=7, restarts=0)
        with pytest.raises(ValueError, match="beam_width"):
            beam_search(gcd_graph, n_steps=7, beam_width=0)

    def test_spec_dispatch_forwards_driver_knobs(self, gcd_graph):
        spec = SearchSpec(driver="beam", beam_width=1, seed=9)
        result = optimize(gcd_graph, spec, n_steps=7)
        assert result.driver == "beam"
        assert result.seed == 9


class TestResume:
    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        """Kill a search mid-flight; the journal resume must land on the
        identical outcome (the satellite acceptance property)."""
        graph = build("gen:branchy:8")
        journal = tmp_path / "opt.jsonl"
        kwargs = dict(n_steps=12, iters=80, seed=0, restarts=2)
        uninterrupted = anneal(graph, **kwargs)

        with pytest.raises(EvaluationBudgetExceeded):
            anneal(graph, journal=journal, max_evaluations=10, **kwargs)
        resumed = anneal(graph, journal=journal, **kwargs)

        assert resumed.outcome() == uninterrupted.outcome()
        assert resumed.resumed >= 10  # served from the journal
        assert resumed.evaluations < uninterrupted.evaluations

    def test_journal_replay_costs_no_evaluations(self, gcd_graph, tmp_path):
        journal = tmp_path / "opt.jsonl"
        first = anneal(gcd_graph, n_steps=7, iters=40, seed=0,
                       journal=journal)
        replay = anneal(gcd_graph, n_steps=7, iters=40, seed=0,
                        journal=journal)
        assert replay.outcome() == first.outcome()
        assert replay.evaluations == 0
        assert replay.resumed > 0

    def test_journal_has_meta_line_and_keys(self, gcd_graph, tmp_path):
        journal = tmp_path / "opt.jsonl"
        anneal(gcd_graph, n_steps=7, iters=5, seed=0, journal=journal)
        lines = journal.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta == {"format": 1, "kind": "opt-journal"}
        record = json.loads(lines[1])
        assert {"key", "sig", "metrics"} <= set(record)

    def test_torn_tail_tolerated(self, gcd_graph, tmp_path):
        journal = tmp_path / "opt.jsonl"
        first = anneal(gcd_graph, n_steps=7, iters=30, seed=0,
                       journal=journal)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn-rec')  # killed mid-write
        resumed = anneal(gcd_graph, n_steps=7, iters=30, seed=0,
                         journal=journal)
        assert resumed.outcome() == first.outcome()

    def test_stale_signature_records_ignored(self, gcd_graph, tmp_path):
        """A journal written under different evaluation parameters must
        not poison a new run."""
        journal = tmp_path / "opt.jsonl"
        anneal(gcd_graph, n_steps=7, iters=10, seed=0, journal=journal,
               objective="sim_power", sim_vectors=8)
        fresh = anneal(gcd_graph, n_steps=7, iters=10, seed=0,
                       journal=journal)  # gated_weight level
        assert fresh.resumed == 0

    def test_shared_journal_across_circuits(self, tmp_path):
        """Record keys embed the graph fingerprint, so one journal can
        serve a multi-circuit run without collisions."""
        journal = tmp_path / "opt.jsonl"
        for name in ("dealer", "gcd"):
            anneal(build(name), n_steps=7, iters=10, seed=0,
                   journal=journal)
        dealer_again = anneal(build("dealer"), n_steps=7, iters=10,
                              seed=0, journal=journal)
        assert dealer_again.evaluations == 0


class TestStoreAwareness:
    def test_warm_store_recomputes_nothing(self, gcd_graph, tmp_path):
        store = DiskArtifactCache(tmp_path / "store")
        cold = anneal(gcd_graph, n_steps=7, iters=40, seed=0, store=store)
        warm = anneal(gcd_graph, n_steps=7, iters=40, seed=0,
                      store=DiskArtifactCache(tmp_path / "store"))
        assert warm.outcome() == cold.outcome()
        assert warm.evaluations == 0
        assert cold.evaluations > 0

    def test_store_accepts_a_path(self, gcd_graph, tmp_path):
        anneal(gcd_graph, n_steps=7, iters=10, seed=0,
               store=tmp_path / "store")
        warm = anneal(gcd_graph, n_steps=7, iters=10, seed=0,
                      store=tmp_path / "store")
        assert warm.evaluations == 0

    def test_expensive_objectives_share_stage_artifacts(self, dealer_graph,
                                                        tmp_path):
        """area needs full synthesis; the store doubles as the pipeline
        stage cache so a warm run synthesizes nothing."""
        store = DiskArtifactCache(tmp_path / "store")
        cold = anneal(dealer_graph, objective="gated_weight,area=0.01",
                      n_steps=6, iters=15, seed=0, store=store)
        warm_store = DiskArtifactCache(tmp_path / "store")
        warm = anneal(dealer_graph, objective="gated_weight,area=0.01",
                      n_steps=6, iters=15, seed=0, store=warm_store)
        assert warm.outcome() == cold.outcome()
        assert warm.evaluations == 0

    def test_evaluation_budget_without_journal(self, gcd_graph):
        with pytest.raises(EvaluationBudgetExceeded):
            anneal(gcd_graph, n_steps=7, iters=200, seed=0,
                   max_evaluations=3)

    def test_journal_closed_when_driver_dies(self, gcd_graph, tmp_path,
                                             monkeypatch):
        """An interrupted driver must not leak the journal handle."""
        from repro.opt import evaluate as evaluate_mod

        closed = []
        original = evaluate_mod.Evaluator.close
        monkeypatch.setattr(
            evaluate_mod.Evaluator, "close",
            lambda self: (closed.append(True), original(self))[1])
        with pytest.raises(EvaluationBudgetExceeded):
            anneal(gcd_graph, n_steps=7, iters=100, seed=0,
                   journal=tmp_path / "opt.jsonl", max_evaluations=2)
        assert closed

    def test_pm_base_none_matches_paper_defaults(self, gcd_graph):
        """None and PMOptions() are the same evaluation question, so
        they must share journal/store signatures."""
        from repro.core.pm_pass import PMOptions

        none_sig = Evaluator(graph=gcd_graph,
                             objective="gated_weight")._signature()
        default_sig = Evaluator(graph=gcd_graph, objective="gated_weight",
                                pm_base=PMOptions())._signature()
        assert none_sig == default_sig


class TestEvaluatorLevels:
    def test_pm_level_metrics(self, gcd_graph):
        evaluator = Evaluator(graph=gcd_graph, objective="gated_weight")
        from repro.opt.space import SearchSpace

        space = SearchSpace.for_graph(gcd_graph, n_steps=7)
        _, candidate = space.greedy_candidates(gcd_graph)[0]
        score, metrics = evaluator.evaluate(candidate)
        assert set(metrics) == {"gated_weight", "managed_muxes",
                                "static_power"}
        assert score == metrics["gated_weight"]

    def test_design_level_adds_area(self, dealer_graph):
        evaluator = Evaluator(graph=dealer_graph, objective="area")
        from repro.opt.space import SearchSpace

        space = SearchSpace.for_graph(dealer_graph, n_steps=6)
        _, candidate = space.greedy_candidates(dealer_graph)[0]
        score, metrics = evaluator.evaluate(candidate)
        assert metrics["area"] > 0
        assert metrics["controller_literals"] > 0
        assert score == -metrics["area"]  # minimized

    def test_pair_level_simulates(self, dealer_graph):
        evaluator = Evaluator(graph=dealer_graph, objective="sim_power",
                              sim_vectors=16)
        from repro.opt.space import SearchSpace

        space = SearchSpace.for_graph(dealer_graph, n_steps=6)
        _, candidate = space.greedy_candidates(dealer_graph)[0]
        _, metrics = evaluator.evaluate(candidate)
        assert "sim_power" in metrics

    def test_memo_hit_on_revisit(self, gcd_graph):
        evaluator = Evaluator(graph=gcd_graph, objective="gated_weight")
        from repro.opt.space import SearchSpace

        space = SearchSpace.for_graph(gcd_graph, n_steps=7)
        _, candidate = space.greedy_candidates(gcd_graph)[0]
        evaluator.evaluate(candidate)
        evaluator.evaluate(candidate)
        assert evaluator.stats.computed == 1
        assert evaluator.stats.memo_hits == 1


class TestExploreSearchMode:
    def test_one_optimized_point_per_circuit(self):
        result = explore(["dealer", "gcd"], budgets=[6, 7],
                         search=SearchSpec(driver="beam", beam_width=2))
        assert len(result.points) == 2
        assert [p.circuit for p in result.points] == ["dealer", "gcd"]
        assert all(p.config_label == "beam[gated_weight]"
                   for p in result.points)
        assert all(p.n_steps in (6, 7) for p in result.points)

    def test_search_at_least_matches_grid_best(self):
        grid = explore(["gcd"], budgets=[5, 6, 7])
        searched = explore(["gcd"], budgets=[5, 6, 7], search="anneal")
        # The optimizer maximizes gated weight, which weakly improves
        # managed-mux count vs every fixed-ordering grid point's best.
        assert searched.points[0].managed_muxes >= \
            max(p.managed_muxes for p in grid.points) - 1

    def test_store_and_resume_thread_through(self, tmp_path):
        journal = tmp_path / "search.jsonl"
        cold = explore(["dealer"], budgets=[6],
                       search=SearchSpec(iters=20),
                       store=tmp_path / "store", resume=journal)
        warm = explore(["dealer"], budgets=[6],
                       search=SearchSpec(iters=20),
                       store=tmp_path / "store", resume=journal)

        def shape(result):
            return [(p.circuit, p.n_steps, p.config_label,
                     p.managed_muxes, p.area, p.power_reduction_pct)
                    for p in result.points]

        assert shape(warm) == shape(cold)
        assert warm.resumed > 0
        assert warm.store_hits > 0  # stage artifacts came from disk

    def test_mapping_budgets(self):
        result = explore(["dealer", "gcd"],
                         budgets={"dealer": [5, 6], "gcd": [6, 7]},
                         search="beam")
        by_name = {p.circuit: p for p in result.points}
        assert by_name["dealer"].n_steps in (5, 6)
        assert by_name["gcd"].n_steps in (6, 7)
