"""End-to-end synthesis flow."""

import pytest

from repro.core.pm_pass import PMOptions
from repro.flow import synthesize, synthesize_pair
from repro.sched.timing import InfeasibleScheduleError, critical_path_length


class TestSynthesize:
    def test_produces_complete_design(self, dealer_graph):
        result = synthesize(dealer_graph, 6)
        design = result.design
        assert design.schedule.n_steps == 6
        assert design.binding.units
        assert design.registers.count > 0
        assert design.controller.n_states == 6

    def test_throughput_constraint_respected(self, small_circuit):
        cp = critical_path_length(small_circuit)
        for steps in (cp, cp + 1):
            result = synthesize(small_circuit, steps)
            result.schedule.verify(result.allocation)
            assert result.schedule.n_steps == steps

    def test_infeasible_raises(self, dealer_graph):
        with pytest.raises(InfeasibleScheduleError):
            synthesize(dealer_graph, 2)

    def test_static_report_available(self, gcd_graph):
        result = synthesize(gcd_graph, 5)
        assert result.static_report().reduction_pct == \
            pytest.approx(11.76, abs=0.01)

    def test_invalid_graph_rejected(self):
        from repro.ir.builder import GraphBuilder
        b = GraphBuilder("broken")
        b.input("a")
        with pytest.raises(Exception):
            synthesize(b.graph, 3)

    def test_mutex_sharing_flag(self, abs_diff_graph):
        plain = synthesize(abs_diff_graph, 2)
        shared = synthesize(abs_diff_graph, 2, mutex_sharing=True)
        assert len(shared.design.binding.units) <= \
            len(plain.design.binding.units)


class TestSynthesizePair:
    def test_baseline_has_no_gating(self, vender_graph):
        pair = synthesize_pair(vender_graph, 6)
        assert not pair.baseline.design.is_power_managed
        assert pair.baseline.pm.managed_count == 0

    def test_area_increase_reasonable(self, small_circuit):
        """Paper Table II: area increase stays within ~1.2x."""
        cp = critical_path_length(small_circuit)
        pair = synthesize_pair(small_circuit, cp + 2)
        assert 0.9 <= pair.area_increase <= 1.35

    def test_pipelined_pair(self, dealer_graph):
        pair = synthesize_pair(dealer_graph, 6, initiation_interval=3)
        assert pair.managed.schedule.initiation_interval == 3
        pair.managed.schedule.verify(pair.managed.allocation)

    def test_ordering_option_propagates(self, vender_graph):
        default = synthesize(vender_graph, 5)
        savings = synthesize(vender_graph, 5,
                             PMOptions(ordering="savings"))
        # Both must be valid designs; selections may differ.
        assert default.design.controller.n_states == 5
        assert savings.design.controller.n_states == 5
