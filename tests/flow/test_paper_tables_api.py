"""The programmatic table-regeneration API."""

import pytest

from repro.circuits import PAPER_TABLE1, PAPER_TABLE2, TABLE2_BUDGETS
from repro.paper_tables import measure_table1, measure_table2, measure_table3


def test_measure_table1_matches_paper_counts():
    measured = measure_table1()
    for name, stats in measured.items():
        paper = PAPER_TABLE1[name]
        assert (stats.mux, stats.comp, stats.add, stats.sub, stats.mul) == \
            (paper.mux, paper.comp, paper.add, paper.sub, paper.mul)


def test_measure_table2_covers_all_budgets():
    rows = measure_table2()
    keys = {(r.name, r.control_steps) for r in rows}
    expected = {(name, s) for name, budgets in TABLE2_BUDGETS.items()
                for s in budgets}
    assert keys == expected
    paper_keys = {(r.name, r.control_steps) for r in PAPER_TABLE2}
    assert keys == paper_keys


def test_measure_table2_gcd_exact():
    rows = {(r.name, r.control_steps): r for r in measure_table2()}
    assert rows[("gcd", 5)].power_reduction_pct == pytest.approx(11.76,
                                                                 abs=0.01)
    assert rows[("gcd", 5)].avg_mux == pytest.approx(5.5)


def test_measure_table3_shape():
    rows = measure_table3(n_vectors=64)
    assert {r.name for r in rows} == {"dealer", "gcd", "vender"}
    for row in rows:
        assert row.power_reduction_pct > 0
        assert 0.8 <= row.area_increase <= 1.3
