"""Report rendering and the command-line interface."""

import pytest

from repro.circuits import gcd
from repro.cli import load_circuit, main
from repro.flow import synthesize
from repro.report import full_report, register_map, schedule_gantt, utilization


@pytest.fixture(scope="module")
def gcd_result():
    return synthesize(gcd(), 7)


class TestReport:
    def test_full_report_sections(self, gcd_result):
        text = full_report(gcd_result)
        for fragment in ("power-management decisions", "schedule:",
                         "unit utilization", "registers:", "area:",
                         "expected datapath power", "controller:"):
            assert fragment in text

    def test_gantt_one_row_per_unit(self, gcd_result):
        gantt = schedule_gantt(gcd_result)
        lines = gantt.splitlines()
        assert len(lines) == 1 + len(gcd_result.design.binding.units)
        # Guarded ops are marked with '?'.
        assert "?" in gantt

    def test_utilization_in_unit_interval(self, gcd_result):
        for fraction in utilization(gcd_result).values():
            assert 0.0 < fraction <= 1.0

    def test_register_map_mentions_lifetimes(self, gcd_result):
        text = register_map(gcd_result)
        assert "[0.." in text
        for reg in set(gcd_result.design.registers.assignment.values()):
            assert reg.name in text


class TestCLI:
    def test_stats(self, capsys):
        assert main(["stats", "dealer"]) == 0
        out = capsys.readouterr().out
        assert "critical path : 4" in out
        assert "MUX 3, COMP 3" in out

    def test_synthesize(self, capsys):
        assert main(["synthesize", "gcd", "--steps", "7"]) == 0
        out = capsys.readouterr().out
        assert "2/6 muxes managed" in out
        assert "11.8% saved" in out

    def test_synthesize_defaults_to_cp_plus_slack(self, capsys):
        assert main(["synthesize", "gcd"]) == 0
        out = capsys.readouterr().out
        assert "6 steps" in out  # cp 5 + default slack 1

    def test_no_pm_flag(self, capsys):
        assert main(["synthesize", "gcd", "--steps", "7", "--no-pm"]) == 0
        out = capsys.readouterr().out
        assert "0/0 muxes managed" in out or "baseline" in out

    def test_vhdl_to_file(self, tmp_path, capsys):
        target = tmp_path / "gcd.vhd"
        assert main(["vhdl", "gcd", "--steps", "6", "-o", str(target)]) == 0
        text = target.read_text()
        assert "entity gcd_datapath is" in text

    def test_vhdl_to_stdout(self, capsys):
        assert main(["vhdl", "gcd", "--steps", "6"]) == 0
        assert "entity gcd_controller" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "dealer", "--steps", "6",
                     "--vectors", "32"]) == 0
        out = capsys.readouterr().out
        assert "saved" in out and "area x" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "cordic" in out

    def test_dsl_file_loading(self, tmp_path, capsys):
        source = tmp_path / "tiny.circ"
        source.write_text(
            "circuit tiny { input a, b; c = a > b;"
            " output r = c ? a - b : b - a; }")
        assert main(["stats", str(source)]) == 0
        assert "MUX 1" in capsys.readouterr().out

    def test_unknown_circuit_exits(self):
        with pytest.raises(SystemExit, match="neither a known circuit"):
            load_circuit("no_such_thing")

    def test_partial_flag(self, capsys):
        assert main(["synthesize", "dealer", "--steps", "4",
                     "--partial"]) == 0
        assert "managed" in capsys.readouterr().out
