"""Integration regressions: the measured counterparts of the paper tables.

These pin the numbers EXPERIMENTS.md reports.  Where our reconstruction
matches the paper exactly the assertion says so; elsewhere the paper value
appears in a comment so drift is visible in review.
"""

import pytest

from repro.circuits import TABLE2_BUDGETS, build
from repro.core.pm_pass import apply_power_management
from repro.flow import synthesize_pair
from repro.power.static import static_power


# (circuit, steps) -> (managed muxes, datapath power reduction %)
MEASURED_TABLE2 = {
    ("dealer", 4): (1, 16.67),   # paper: 1, 27.00
    ("dealer", 5): (3, 26.04),   # paper: 1, 27.00
    ("dealer", 6): (3, 26.04),   # paper: 2, 33.33
    ("gcd", 5): (2, 11.76),      # paper: 1, 11.76  (reduction exact)
    ("gcd", 6): (2, 11.76),      # paper: 1, 11.76  (reduction exact)
    ("gcd", 7): (2, 11.76),      # paper: 2, 16.18
    ("vender", 5): (2, 30.26),   # paper: 4, 41.67
    ("vender", 6): (3, 32.24),   # paper: 4, 41.67
    ("cordic", 48): (47, 35.32),  # paper: 38, 30.16
    ("cordic", 52): (47, 35.32),  # paper: 46, 34.92
}


@pytest.mark.parametrize("name,steps",
                         [(n, s) for n, budgets in TABLE2_BUDGETS.items()
                          for s in budgets])
def test_table2_measured_values(name, steps):
    graph = build(name)
    result = apply_power_management(graph, steps)
    report = static_power(result)
    muxes, reduction = MEASURED_TABLE2[(name, steps)]
    assert result.managed_count == muxes
    assert report.reduction_pct == pytest.approx(reduction, abs=0.01)


@pytest.mark.parametrize("name,steps", [("dealer", 4), ("gcd", 5),
                                        ("vender", 5)])
def test_table2_shape_savings_positive_with_slack(name, steps):
    """The reproduction shape: every circuit shows datapath savings at
    some budget, within the paper's 10-45% band."""
    graph = build(name)
    best = max(
        static_power(apply_power_management(graph, s)).reduction_pct
        for s in TABLE2_BUDGETS[name]
    )
    assert 10.0 <= best <= 45.0


@pytest.mark.parametrize("name,steps", [("dealer", 6), ("vender", 6)])
def test_table3_shape(name, steps):
    """Simulated (gate-level analog) savings are positive but below the
    static datapath number — the controller penalty the paper reports."""
    from repro.power.simulated import compare_designs
    graph = build(name)
    pair = synthesize_pair(graph, steps)
    cmp = compare_designs(pair.baseline.design, pair.managed.design,
                          n_vectors=128)
    static_pct = static_power(pair.managed.pm).reduction_pct
    assert 0 < cmp.reduction_pct
    assert cmp.reduction_pct <= cmp.datapath_reduction_pct
    assert cmp.reduction_pct < static_pct + 5  # same regime as Table II


def test_table2_area_increase_band():
    """Paper Table II column 4: between 1.00 and 1.20."""
    for name, budgets in TABLE2_BUDGETS.items():
        if name == "cordic":
            continue  # covered by the slower test below in benches
        for steps in budgets:
            pair = synthesize_pair(build(name), steps)
            assert 0.9 <= pair.area_increase <= 1.35
