"""Scheduler-strategy registry: lookup, errors, third-party extension."""

import pytest

from repro.pipeline import (
    FlowConfig,
    Pipeline,
    UnknownSchedulerError,
    available_schedulers,
    get_scheduler,
    ii_capable_schedulers,
    register_scheduler,
    supports_initiation_interval,
    unregister_scheduler,
)


class TestLookup:
    def test_builtins_registered(self):
        assert {"list", "force_directed", "exact", "pipeline"} <= \
            set(available_schedulers())

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(UnknownSchedulerError, match="force_directed"):
            get_scheduler("hyper")

    def test_unknown_name_fails_at_run_time(self, gcd_graph):
        with pytest.raises(UnknownSchedulerError, match="hyper"):
            Pipeline().run(gcd_graph, FlowConfig(n_steps=7,
                                                 scheduler="hyper"))


class TestSelectionByName:
    @pytest.mark.parametrize("name", ["list", "force_directed", "exact"])
    def test_each_builtin_schedules_gcd(self, gcd_graph, name):
        result = Pipeline().run(gcd_graph, FlowConfig(n_steps=7,
                                                      scheduler=name))
        result.schedule.verify(result.allocation)
        assert result.schedule.n_steps == 7

    def test_exact_never_costs_more_than_list(self, dealer_graph):
        pipeline = Pipeline()
        lst = pipeline.run(dealer_graph, FlowConfig(n_steps=6))
        exact = pipeline.run(dealer_graph,
                             FlowConfig(n_steps=6, scheduler="exact"))
        assert exact.allocation.cost() <= lst.allocation.cost()

    def test_pipelining_rejected_by_non_list_strategies(self, gcd_graph):
        for name in ("force_directed", "exact"):
            with pytest.raises(ValueError, match="pipelining"):
                Pipeline().run(gcd_graph, FlowConfig(
                    n_steps=7, scheduler=name, initiation_interval=3))

    def test_pipeline_strategy_finds_an_ii_at_or_below_the_cap(
            self, small_circuit):
        result = Pipeline().run(small_circuit, FlowConfig(
            n_steps=7, scheduler="pipeline", initiation_interval=4))
        result.schedule.verify(result.allocation)
        assert 1 <= result.schedule.initiation_interval <= 4

    def test_pipeline_strategy_without_cap_uses_step_budget(self, gcd_graph):
        result = Pipeline().run(gcd_graph, FlowConfig(
            n_steps=7, scheduler="pipeline"))
        result.schedule.verify(result.allocation)
        assert result.schedule.initiation_interval <= 7

    def test_scheduler_choice_is_part_of_the_cache_key(self, gcd_graph):
        from repro.pipeline import ArtifactCache

        pipeline = Pipeline(cache=ArtifactCache())
        pipeline.run(gcd_graph, FlowConfig(n_steps=7))
        ctx = pipeline.run_context(
            gcd_graph, FlowConfig(n_steps=7, scheduler="exact"))
        assert "schedule" not in ctx.cache_hits
        assert "power_manage" in ctx.cache_hits  # PM is scheduler-agnostic


class TestRegistration:
    def test_third_party_strategy_selectable_by_name(self, gcd_graph):
        from repro.sched.minimize import minimize_resources

        @register_scheduler("asap_greedy")
        def _asap(graph, config):
            found = minimize_resources(graph, config.require_steps())
            return found.schedule, found.allocation

        try:
            result = Pipeline().run(
                gcd_graph, FlowConfig(n_steps=7, scheduler="asap_greedy"))
            result.schedule.verify(result.allocation)
            assert "asap_greedy" in available_schedulers()
        finally:
            unregister_scheduler("asap_greedy")
        assert "asap_greedy" not in available_schedulers()

    def test_register_is_usable_without_decorator_sugar(self):
        sentinel = lambda graph, config: None  # noqa: E731
        register_scheduler("sentinel", sentinel)
        try:
            assert get_scheduler("sentinel") is sentinel
        finally:
            unregister_scheduler("sentinel")


class TestInitiationIntervalCapability:
    """Issue 10 satellite: the 'does not support pipelining' error must
    list every II-capable strategy, derived from the registry so the
    message cannot rot as strategies come and go."""

    def test_capability_flags(self):
        assert supports_initiation_interval("list")
        assert supports_initiation_interval("pipeline")
        assert not supports_initiation_interval("force_directed")
        assert not supports_initiation_interval("exact")
        assert {"list", "pipeline"} <= set(ii_capable_schedulers())

    def test_rejection_names_all_capable_strategies(self, gcd_graph):
        config = FlowConfig(n_steps=7, scheduler="exact",
                            initiation_interval=3)
        with pytest.raises(ValueError, match=r"'list'") as err:
            Pipeline().run(gcd_graph, config)
        for name in ii_capable_schedulers():
            assert repr(name) in str(err.value)
        assert "'pipeline'" in str(err.value)

    def test_message_tracks_registrations(self, gcd_graph):
        """A newly registered II-capable strategy appears in the error
        without anyone editing the message."""
        register_scheduler("warp", lambda g, c: None, supports_ii=True)
        try:
            assert "warp" in ii_capable_schedulers()
            with pytest.raises(ValueError, match=r"'warp'"):
                Pipeline().run(gcd_graph, FlowConfig(
                    n_steps=7, scheduler="force_directed",
                    initiation_interval=2))
        finally:
            unregister_scheduler("warp")
        assert "warp" not in ii_capable_schedulers()

    def test_reregistration_can_drop_capability(self):
        register_scheduler("warp", lambda g, c: None, supports_ii=True)
        register_scheduler("warp", lambda g, c: None)
        try:
            assert not supports_initiation_interval("warp")
        finally:
            unregister_scheduler("warp")
