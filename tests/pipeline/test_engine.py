"""Pipeline construction, stage ordering, introspection, and wiring."""

import pytest

from repro.pipeline import (
    ArtifactCache,
    FlowConfig,
    MissingArtifactError,
    Pipeline,
    PipelineWiringError,
    PowerManageStage,
    ReportStage,
    ScheduleStage,
    Stage,
    StageError,
    ValidateStage,
    default_stages,
)


class TestWiring:
    def test_default_stage_order(self):
        assert Pipeline().stage_names == (
            "validate", "analyze", "power_manage", "schedule",
            "allocate", "elaborate", "verify", "report")

    def test_every_requirement_is_provided_upstream(self):
        provided = set()
        for stage in default_stages():
            assert set(stage.requires) <= provided, stage.name
            provided |= set(stage.provides)

    def test_out_of_order_stages_rejected(self):
        with pytest.raises(PipelineWiringError, match="requires"):
            Pipeline([ScheduleStage(), PowerManageStage()])

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(PipelineWiringError, match="duplicate"):
            Pipeline([ValidateStage(), ValidateStage()])

    def test_unnamed_stage_rejected(self):
        with pytest.raises(PipelineWiringError, match="no name"):
            Pipeline([Stage()])

    def test_stage_lookup_by_name(self):
        pipeline = Pipeline()
        assert pipeline.stage("schedule").provides == \
            ("schedule", "allocation", "pipelined_gating")
        with pytest.raises(KeyError):
            pipeline.stage("nonesuch")

    def test_describe_lists_every_stage(self):
        text = Pipeline().describe()
        for name in Pipeline().stage_names:
            assert name in text


class TestRun:
    def test_run_produces_result(self, dealer_graph):
        result = Pipeline().run(dealer_graph, FlowConfig(n_steps=6))
        assert result.design.schedule.n_steps == 6
        assert result.design.binding.units
        assert result.pm.managed_count > 0

    def test_run_context_exposes_all_artifacts(self, gcd_graph):
        ctx = Pipeline().run_context(gcd_graph, FlowConfig(n_steps=7))
        for name in ("validated", "stats", "pm", "schedule", "allocation",
                     "binding", "registers", "design", "verified",
                     "result"):
            assert ctx.has(name), name
        assert ctx.produced_by["pm"] == "power_manage"
        assert set(ctx.stage_seconds) == set(Pipeline().stage_names)

    def test_missing_artifact_error_names_available(self, gcd_graph):
        ctx = Pipeline().run_context(gcd_graph, FlowConfig(n_steps=7))
        with pytest.raises(MissingArtifactError, match="available"):
            ctx.get("nonesuch")

    def test_unset_n_steps_rejected(self, gcd_graph):
        with pytest.raises(ValueError, match="n_steps"):
            Pipeline().run(gcd_graph, FlowConfig())

    def test_truncated_pipeline_has_no_result(self, gcd_graph):
        front = Pipeline(list(default_stages())[:-1])
        with pytest.raises(StageError, match="result"):
            front.run(gcd_graph, FlowConfig(n_steps=7))
        ctx = front.run_context(gcd_graph, FlowConfig(n_steps=7))
        assert ctx.has("design") and not ctx.has("result")

    def test_custom_stage_composes(self, gcd_graph):
        class CountMuxesStage(Stage):
            name = "count_muxes"
            requires = ("pm",)
            provides = ("mux_count",)

            def run(self, ctx):
                return {"mux_count": ctx.get("pm").managed_count}

        stages = list(default_stages())
        stages.insert(3, CountMuxesStage())
        ctx = Pipeline(stages).run_context(gcd_graph, FlowConfig(n_steps=7))
        assert ctx.get("mux_count") == ctx.get("pm").managed_count

    def test_stage_breaking_contract_detected(self, gcd_graph):
        class LyingStage(Stage):
            name = "liar"
            provides = ("promised",)

            def run(self, ctx):
                return {"delivered": 1}

        with pytest.raises(StageError, match="declared"):
            Pipeline([LyingStage()]).run_context(
                gcd_graph, FlowConfig(n_steps=7))

    def test_verify_stage_honours_flag(self, gcd_graph):
        on = Pipeline().run_context(gcd_graph,
                                    FlowConfig(n_steps=7, verify=True))
        off = Pipeline().run_context(gcd_graph, FlowConfig(n_steps=7))
        assert on.get("verified") is True
        assert off.get("verified") is False

    def test_run_many_shares_one_cache(self, dealer_graph, gcd_graph):
        pipeline = Pipeline(cache=ArtifactCache())
        jobs = [(dealer_graph, FlowConfig(n_steps=6)),
                (gcd_graph, FlowConfig(n_steps=7)),
                (dealer_graph, FlowConfig(n_steps=6))]
        contexts = pipeline.run_many(jobs)
        assert len(contexts) == 3
        assert not contexts[0].cache_hits
        assert contexts[2].cache_hits  # repeat of job 0


class TestFlowConfig:
    def test_baseline_disables_pm_only(self):
        config = FlowConfig(n_steps=6, width=16, mutex_sharing=True)
        base = config.baseline()
        assert not base.pm.enabled
        assert base.width == 16 and base.mutex_sharing
        assert base.n_steps == 6

    def test_cache_key_tracks_only_named_fields(self):
        a = FlowConfig(n_steps=6, width=8)
        b = FlowConfig(n_steps=6, width=16)
        fields = ("n_steps", "pm")
        assert a.cache_key(fields) == b.cache_key(fields)
        assert a.cache_key(("width",)) != b.cache_key(("width",))

    def test_describe_mentions_scheduler(self):
        assert "scheduler='exact'" in \
            FlowConfig(n_steps=3, scheduler="exact").describe()
