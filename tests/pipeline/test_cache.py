"""Artifact caching: fingerprints, hit/miss accounting, reuse rules."""

import pytest

from repro.circuits import build
from repro.pipeline import (
    ArtifactCache,
    FlowConfig,
    Pipeline,
    graph_fingerprint,
)

CACHEABLE = ("analyze", "power_manage", "schedule", "allocate", "elaborate")


class TestFingerprint:
    def test_identical_builds_fingerprint_equally(self):
        assert graph_fingerprint(build("gcd")) == \
            graph_fingerprint(build("gcd"))

    def test_different_circuits_differ(self):
        assert graph_fingerprint(build("gcd")) != \
            graph_fingerprint(build("dealer"))

    def test_control_edges_change_the_fingerprint(self, abs_diff_graph):
        from repro.core import apply_power_management

        pm = apply_power_management(abs_diff_graph, 3)
        assert pm.graph.control_edges()  # sanity: PM added edges
        assert graph_fingerprint(pm.graph) != \
            graph_fingerprint(abs_diff_graph)


class TestHitMiss:
    def test_identical_rerun_hits_every_cacheable_stage(self, gcd_graph):
        pipeline = Pipeline(cache=ArtifactCache())
        first = pipeline.run_context(gcd_graph, FlowConfig(n_steps=7))
        second = pipeline.run_context(gcd_graph, FlowConfig(n_steps=7))
        assert first.cache_hits == []
        assert first.cache_misses == list(CACHEABLE)
        assert second.cache_hits == list(CACHEABLE)
        assert second.cache_misses == []

    def test_cached_rerun_reproduces_the_same_design(self, gcd_graph):
        pipeline = Pipeline(cache=ArtifactCache())
        first = pipeline.run(gcd_graph, FlowConfig(n_steps=7))
        second = pipeline.run(gcd_graph, FlowConfig(n_steps=7))
        assert first.design.summary() == second.design.summary()
        assert first.schedule.table() == second.schedule.table()

    def test_changed_budget_misses(self, gcd_graph):
        pipeline = Pipeline(cache=ArtifactCache())
        pipeline.run(gcd_graph, FlowConfig(n_steps=7))
        ctx = pipeline.run_context(gcd_graph, FlowConfig(n_steps=8))
        # Budget-independent analysis is reused; the rest recomputes.
        assert ctx.cache_hits == ["analyze"]

    def test_width_change_reuses_pm_and_scheduling(self, gcd_graph):
        pipeline = Pipeline(cache=ArtifactCache())
        pipeline.run(gcd_graph, FlowConfig(n_steps=7, width=8))
        ctx = pipeline.run_context(gcd_graph, FlowConfig(n_steps=7,
                                                         width=16))
        assert ctx.cache_hits == ["analyze", "power_manage", "schedule",
                                  "allocate"]
        assert ctx.cache_misses == ["elaborate"]
        assert ctx.get("design").width == 16

    def test_baseline_and_managed_share_analysis_only(self, gcd_graph):
        pipeline = Pipeline(cache=ArtifactCache())
        config = FlowConfig(n_steps=7)
        pipeline.run(gcd_graph, config.baseline())
        ctx = pipeline.run_context(gcd_graph, config)
        assert ctx.cache_hits == ["analyze"]

    def test_no_cache_means_no_accounting(self, gcd_graph):
        ctx = Pipeline().run_context(gcd_graph, FlowConfig(n_steps=7))
        assert ctx.cache_hits == [] and ctx.cache_misses == []

    def test_stats_accumulate(self, gcd_graph):
        cache = ArtifactCache()
        pipeline = Pipeline(cache=cache)
        pipeline.run(gcd_graph, FlowConfig(n_steps=7))
        pipeline.run(gcd_graph, FlowConfig(n_steps=7))
        assert cache.stats.hits == len(CACHEABLE)
        assert cache.stats.misses == len(CACHEABLE)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_context_summary_marks_cached_stages(self, gcd_graph):
        pipeline = Pipeline(cache=ArtifactCache())
        pipeline.run(gcd_graph, FlowConfig(n_steps=7))
        ctx = pipeline.run_context(gcd_graph, FlowConfig(n_steps=7))
        summary = ctx.summary()
        assert "pm" in summary and "(cache)" in summary


class TestEviction:
    def test_lru_eviction_bounds_the_store(self):
        cache = ArtifactCache(max_entries=2)
        cache.store(("a",), {"x": 1})
        cache.store(("b",), {"x": 2})
        cache.store(("c",), {"x": 3})
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup(("a",)) is None
        assert cache.lookup(("c",)) == {"x": 3}

    def test_eviction_order_is_least_recently_used(self):
        cache = ArtifactCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.store((key,), {"v": key})
        cache.store(("d",), {"v": "d"})  # evicts a (oldest)
        cache.store(("e",), {"v": "e"})  # evicts b
        assert ("a",) not in cache and ("b",) not in cache
        assert all((k,) in cache for k in ("c", "d", "e"))
        assert cache.stats.evictions == 2

    def test_lookup_refreshes_recency(self):
        cache = ArtifactCache(max_entries=2)
        cache.store(("a",), {"v": 1})
        cache.store(("b",), {"v": 2})
        assert cache.lookup(("a",)) is not None  # a becomes most recent
        cache.store(("c",), {"v": 3})            # so b is evicted
        assert ("a",) in cache
        assert ("b",) not in cache

    def test_restore_refreshes_recency_without_growth(self):
        cache = ArtifactCache(max_entries=2)
        cache.store(("a",), {"v": 1})
        cache.store(("b",), {"v": 2})
        cache.store(("a",), {"v": 10})  # re-store: refresh, not grow
        assert len(cache) == 2 and cache.stats.evictions == 0
        cache.store(("c",), {"v": 3})   # now b is the LRU entry
        assert ("a",) in cache and ("b",) not in cache
        assert cache.lookup(("a",)) == {"v": 10}

    def test_eviction_stats_accumulate_with_hits_and_misses(self):
        cache = ArtifactCache(max_entries=1)
        cache.lookup(("a",))               # miss
        cache.store(("a",), {"v": 1})
        cache.lookup(("a",))               # hit
        cache.store(("b",), {"v": 2})      # evicts a
        cache.lookup(("a",))               # miss again
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.evictions == 1
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_bounded_under_sustained_load(self):
        cache = ArtifactCache(max_entries=8)
        for k in range(1000):
            cache.store((k,), {"v": k})
        assert len(cache) == 8
        assert cache.stats.evictions == 992
        # The survivors are exactly the 8 most recent.
        assert all((k,) in cache for k in range(992, 1000))

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            ArtifactCache(max_entries=0)

    def test_clear_resets_everything(self):
        cache = ArtifactCache()
        cache.store(("a",), {"x": 1})
        cache.lookup(("a",))
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0
