"""The pipeline reproduces the pre-1.1 monolithic flow byte for byte.

The old ``synthesize()`` sequence — validate, PM pass, minimum-resource
scheduling, elaborate — is inlined here as the reference; the pipeline
(and the deprecation shims that now wrap it) must produce identical
``SynthesisResult`` data for every registered circuit, down to the
generated VHDL text.
"""

import pytest

from repro.circuits import CIRCUITS, TABLE2_BUDGETS, build
from repro.core.pm_pass import PMOptions, apply_power_management
from repro.flow import synthesize, synthesize_pair
from repro.ir.validate import validate
from repro.pipeline import FlowConfig, Pipeline, run_pair
from repro.rtl.design import elaborate
from repro.rtl.vhdl import generate_vhdl
from repro.sched.minimize import minimize_resources
from repro.sched.timing import critical_path_length


def legacy_flow(graph, n_steps, options=None, width=8,
                initiation_interval=None, mutex_sharing=False):
    """The seed's synthesize(), inlined (flow.py @ v1.0)."""
    validate(graph)
    pm = apply_power_management(graph, n_steps, options or PMOptions())
    minimized = minimize_resources(pm.graph, n_steps,
                                   initiation_interval=initiation_interval)
    return elaborate(pm, minimized.schedule, width=width,
                     mutex_sharing=mutex_sharing)


def assert_designs_identical(old_design, new_result):
    new_design = new_result.design
    assert generate_vhdl(old_design) == generate_vhdl(new_design)
    assert old_design.summary() == new_design.summary()
    assert old_design.schedule.table() == new_result.schedule.table()
    assert old_design.area() == new_design.area()
    assert old_design.pm.gating == new_result.pm.gating
    assert old_design.registers.assignment == \
        new_design.registers.assignment


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_pipeline_matches_legacy_flow_everywhere(name):
    graph = build(name)
    budgets = TABLE2_BUDGETS.get(
        name, [critical_path_length(graph) + 1])
    for steps in budgets:
        old = legacy_flow(graph, steps)
        new = Pipeline().run(graph, FlowConfig(n_steps=steps))
        assert_designs_identical(old, new)


@pytest.mark.parametrize("name", ["dealer", "gcd"])
def test_pipeline_matches_legacy_flow_with_options(name):
    graph = build(name)
    steps = critical_path_length(graph) + 2
    options = PMOptions(ordering="savings", partial=True)
    old = legacy_flow(graph, steps, options=options, width=16,
                      mutex_sharing=True)
    new = Pipeline().run(graph, FlowConfig(
        n_steps=steps, pm=options, width=16, mutex_sharing=True))
    assert_designs_identical(old, new)
    assert new.design.width == 16


def test_shims_still_work_and_warn(dealer_graph):
    with pytest.deprecated_call():
        old_style = synthesize(dealer_graph, 6)
    new_style = Pipeline().run(dealer_graph, FlowConfig(n_steps=6))
    assert_designs_identical(old_style.design, new_style)

    with pytest.deprecated_call():
        pair_old = synthesize_pair(dealer_graph, 6)
    pair_new = run_pair(dealer_graph, FlowConfig(n_steps=6))
    assert pair_old.area_increase == pair_new.area_increase
    assert generate_vhdl(pair_old.baseline.design) == \
        generate_vhdl(pair_new.baseline.design)
    assert generate_vhdl(pair_old.managed.design) == \
        generate_vhdl(pair_new.managed.design)


def test_pipelined_shim_matches(dealer_graph):
    with pytest.deprecated_call():
        old = synthesize(dealer_graph, 6, initiation_interval=3)
    new = Pipeline().run(dealer_graph,
                         FlowConfig(n_steps=6, initiation_interval=3))
    assert new.schedule.initiation_interval == 3
    assert_designs_identical(old.design, new)
