"""CLI features introduced with the pipeline API, plus load_circuit errors."""

import pytest

from repro.cli import load_circuit, main


class TestLoadCircuit:
    def test_registered_name(self):
        assert load_circuit("dealer").name == "dealer"

    def test_dsl_file(self, tmp_path):
        source = tmp_path / "tiny.circ"
        source.write_text("""
circuit tiny {
    input a, b;
    c = a > b;
    output out = c ? a : b;
}
""")
        graph = load_circuit(str(source))
        assert graph.name == "tiny"

    def test_unknown_spec_is_a_clean_error(self):
        with pytest.raises(SystemExit) as excinfo:
            load_circuit("not_a_circuit_or_file")
        message = str(excinfo.value)
        assert "not_a_circuit_or_file" in message
        assert "dealer" in message  # lists the registered names

    def test_unreadable_path_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="neither"):
            load_circuit(str(tmp_path / "missing.circ"))


class TestSchedulerFlag:
    def test_synthesize_with_named_scheduler(self, capsys):
        assert main(["synthesize", "gcd", "--steps", "7",
                     "--scheduler", "force_directed"]) == 0
        assert "schedule:" in capsys.readouterr().out

    def test_unknown_scheduler_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["synthesize", "gcd", "--steps", "7",
                  "--scheduler", "hyper"])
        assert "invalid choice" in capsys.readouterr().err

    def test_verify_flag(self, capsys):
        assert main(["synthesize", "gcd", "--steps", "7",
                     "--verify"]) == 0


class TestPipelineFlags:
    def test_ii_cap_reaches_the_modulo_scheduler(self, capsys):
        assert main(["synthesize", "vender", "--steps", "6",
                     "--scheduler", "pipeline", "--ii", "2",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "pipelined gating (II=2, mode=per_sample)" in out

    def test_gating_mode_flag(self, capsys):
        assert main(["synthesize", "vender", "--steps", "6",
                     "--scheduler", "pipeline", "--ii", "2",
                     "--pipelined-gating", "drop", "--verify"]) == 0
        assert "mode=drop" in capsys.readouterr().out

    def test_bad_gating_mode_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["synthesize", "vender", "--steps", "6",
                  "--pipelined-gating", "optimistic"])
        assert "invalid choice" in capsys.readouterr().err

    def test_ii_on_a_non_pipelining_scheduler_is_an_error(self):
        with pytest.raises(ValueError, match="pipeline"):
            main(["synthesize", "gcd", "--steps", "7",
                  "--scheduler", "exact", "--ii", "3"])

    def test_unpipelined_run_prints_no_gating_section(self, capsys):
        assert main(["synthesize", "vender", "--steps", "6"]) == 0
        assert "pipelined gating" not in capsys.readouterr().out


class TestExploreCommand:
    def test_sweep_prints_table_and_best_point(self, capsys):
        assert main(["explore", "dealer", "gcd", "--budgets", "5,6"]) == 0
        out = capsys.readouterr().out
        assert "dealer" in out and "gcd" in out
        assert "best point:" in out
        # 2 circuits x 2 budgets.
        assert out.count("default") == 4

    def test_empty_budgets_rejected(self):
        with pytest.raises(SystemExit, match="budgets"):
            main(["explore", "dealer", "--budgets", ","])

    def test_infeasible_budget_is_a_clean_error(self):
        # dealer's critical path is 4; a 3-step sweep cannot schedule.
        with pytest.raises(SystemExit, match="critical path"):
            main(["explore", "dealer", "--budgets", "3"])

    def test_non_integer_budgets_rejected(self):
        with pytest.raises(SystemExit, match="comma-separated"):
            main(["explore", "dealer", "--budgets", "5,six"])

    def test_verify_flag_reaches_the_sweep_configs(self, monkeypatch):
        import repro.cli as cli

        seen = {}
        real_explore = cli.explore

        def fake_explore(circuits, budgets, configs, workers, **kwargs):
            seen["verify"] = [c.verify for c in configs]
            return real_explore(circuits, budgets, configs=configs,
                                workers=workers, **kwargs)

        monkeypatch.setattr(cli, "explore", fake_explore)
        assert main(["explore", "gcd", "--budgets", "6", "--verify"]) == 0
        assert seen["verify"] == [True]

    def test_dsl_file_circuits_supported(self, tmp_path, capsys):
        source = tmp_path / "tiny.circ"
        source.write_text("""
circuit tiny {
    input a, b;
    c = a > b;
    output out = c ? a : b;
}
""")
        assert main(["explore", str(source), "--budgets", "2,3"]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_generator_specs_supported(self, capsys):
        assert main(["explore", "gen:tiny:3", "--budgets", "8,9"]) == 0
        out = capsys.readouterr().out
        assert "gen:tiny:3" in out

    def test_bad_generator_spec_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="bad generator spec"):
            main(["explore", "gen:tiny:x", "--budgets", "8"])

    def test_typoed_preset_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown preset 'larg'"):
            main(["explore", "gen:larg:42", "--budgets", "8"])

    def test_dsl_file_with_colon_in_name_still_loads(self, tmp_path,
                                                     capsys):
        source = tmp_path / "my:circ.dsl"
        source.write_text("""
circuit colonfile {
    input a, b;
    c = a > b;
    output out = c ? a : b;
}
""")
        assert main(["explore", str(source), "--budgets", "2,3"]) == 0
        assert "colonfile" in capsys.readouterr().out

    def test_store_and_resume_flags(self, tmp_path, capsys):
        store = tmp_path / "store"
        journal = tmp_path / "sweep.jsonl"
        argv = ["explore", "gcd", "--budgets", "6,7",
                "--store", str(store), "--resume", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "disk-store hits" in first
        assert store.is_dir() and journal.exists()
        # Second run: all points replayed from the journal.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "resumed from journal: 2 points" in second

    def test_pareto_flag_prints_the_front(self, capsys):
        assert main(["explore", "dealer", "gcd", "--budgets", "5,6",
                     "--pareto"]) == 0
        out = capsys.readouterr().out
        assert "pareto front:" in out
        assert "best point:" in out


class TestStagesCommand:
    def test_prints_wiring_and_schedulers(self, capsys):
        assert main(["stages"]) == 0
        out = capsys.readouterr().out
        for stage in ("validate", "power_manage", "schedule", "elaborate",
                      "report"):
            assert stage in out
        assert "force_directed" in out
