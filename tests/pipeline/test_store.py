"""Disk store contract: persistence, sharing, bounding, resilience.

The whole suite runs against both implementations of the
:class:`repro.pipeline.StageStore` protocol — the mtime-LRU
:class:`DiskArtifactCache` and the SQLite-indexed
:class:`IndexedArtifactStore` (which shares the file layout but keeps
recency/size in an index).  Implementation-specific behaviors live in
their own tests (``test_large_stores_evict_in_batches`` here,
``test_index.py`` for the index).
"""

import pickle
import time

import pytest

from repro.circuits import build
from repro.pipeline import (
    DiskArtifactCache,
    FlowConfig,
    IndexedArtifactStore,
    Pipeline,
    StageStore,
    graph_fingerprint,
)

CACHEABLE = ("analyze", "power_manage", "schedule", "allocate", "elaborate")

STORE_CLASSES = {
    "disk": DiskArtifactCache,
    "indexed": IndexedArtifactStore,
}


@pytest.fixture(params=sorted(STORE_CLASSES))
def store_cls(request):
    return STORE_CLASSES[request.param]


@pytest.fixture
def store(store_cls, tmp_path):
    return store_cls(tmp_path / "store")


def test_both_implement_the_protocol(store):
    assert isinstance(store, StageStore)


class TestContract:
    def test_miss_then_hit(self, store):
        key = ("stage", "fp", ("n_steps=7",))
        assert store.lookup(key) is None
        store.store(key, {"x": 1, "y": [2, 3]})
        assert store.lookup(key) == {"x": 1, "y": [2, 3]}
        assert store.stats.misses == 1 and store.stats.hits == 1
        assert key in store and len(store) == 1

    def test_entries_are_sharded_by_digest(self, store):
        key = ("stage", "fp", ())
        store.store(key, {"x": 1})
        path = store.path_for(key)
        assert path.exists()
        assert path.parent.parent == store.root
        assert len(path.parent.name) == 2  # 2-hex-char shard directory

    def test_distinct_keys_do_not_collide(self, store):
        store.store(("a", "fp", ()), {"v": 1})
        store.store(("b", "fp", ()), {"v": 2})
        assert store.lookup(("a", "fp", ()))["v"] == 1
        assert store.lookup(("b", "fp", ()))["v"] == 2

    def test_clear(self, store):
        store.store(("a",), {"v": 1})
        store.lookup(("a",))
        store.clear()
        assert len(store) == 0
        assert store.stats.lookups == 0
        assert store.lookup(("a",)) is None

    def test_bad_max_entries_rejected(self, store_cls, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            store_cls(tmp_path, max_entries=0)


class TestPersistence:
    def test_survives_reopening(self, store_cls, tmp_path):
        first = store_cls(tmp_path / "s")
        first.store(("k",), {"v": 41})
        second = store_cls(tmp_path / "s")
        assert second.lookup(("k",)) == {"v": 41}
        assert second.stats.hits == 1

    def test_pipeline_runs_warm_across_store_instances(self, store_cls,
                                                       tmp_path, gcd_graph):
        cold = Pipeline(cache=store_cls(tmp_path / "s"))
        first = cold.run_context(gcd_graph, FlowConfig(n_steps=7))
        assert first.cache_misses == list(CACHEABLE)

        warm = Pipeline(cache=store_cls(tmp_path / "s"))
        second = warm.run_context(gcd_graph, FlowConfig(n_steps=7))
        assert second.cache_hits == list(CACHEABLE)
        assert second.cache_misses == []
        assert first.result.design.summary() == \
            second.result.design.summary()

    def test_warm_run_is_faster(self, tmp_path):
        graph = build("vender")
        config = FlowConfig(n_steps=6)

        start = time.perf_counter()
        Pipeline(cache=DiskArtifactCache(tmp_path / "s")).run(graph, config)
        cold_s = time.perf_counter() - start

        # Best-of-two so a one-off scheduler hiccup can't flake the pin.
        warm_s = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            Pipeline(cache=DiskArtifactCache(tmp_path / "s")).run(graph,
                                                                  config)
            warm_s = min(warm_s, time.perf_counter() - start)
        assert warm_s < cold_s

    def test_content_addressing_spans_equal_graphs(self, store_cls,
                                                   tmp_path):
        """Two independently built but identical graphs share entries."""
        store = store_cls(tmp_path / "s")
        Pipeline(cache=store).run(build("gcd"), FlowConfig(n_steps=7))
        ctx = Pipeline(cache=store).run_context(build("gcd"),
                                                FlowConfig(n_steps=7))
        assert ctx.cache_hits == list(CACHEABLE)

    def test_digest_is_stable_across_processes(self):
        # sha256 over the key repr — not Python's salted hash().
        key = ("analyze", graph_fingerprint(build("gcd")), ("width=8",))
        assert DiskArtifactCache.digest(key) == \
            DiskArtifactCache.digest(key)
        assert len(DiskArtifactCache.digest(key)) == 64


class TestResilience:
    def test_corrupt_entry_is_a_miss_and_removed(self, store):
        key = ("stage", "fp", ())
        store.store(key, {"v": 1})
        store.path_for(key).write_bytes(b"not a pickle")
        assert store.lookup(key) is None
        assert not store.path_for(key).exists()
        # The slot is usable again.
        store.store(key, {"v": 2})
        assert store.lookup(key) == {"v": 2}

    def test_truncated_entry_is_a_miss(self, store):
        key = ("stage", "fp", ())
        store.store(key, {"v": list(range(1000))})
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[:20])  # torn write
        assert store.lookup(key) is None

    def test_no_temp_files_left_behind(self, store):
        for k in range(10):
            store.store((f"k{k}",), {"v": k})
        leftovers = [p for p in store.root.rglob(".tmp-*")]
        assert leftovers == []


class TestBounding:
    def test_lru_prunes_oldest_entries(self, store_cls, tmp_path):
        store = store_cls(tmp_path / "s", max_entries=3)
        now = time.time()
        for k in range(3):
            store.store((f"k{k}",), {"v": k})
            # Deterministic mtime order without sleeping.
            import os

            os.utime(store.path_for((f"k{k}",)),
                     (now + k, now + k))
        store.store(("k3",), {"v": 3})
        assert len(store) == 3
        assert store.stats.evictions == 1
        assert ("k0",) not in store  # oldest went
        assert all((f"k{k}",) in store for k in (1, 2, 3))

    def test_lookup_refreshes_recency(self, store_cls, tmp_path):
        import os

        store = store_cls(tmp_path / "s", max_entries=2)
        now = time.time()
        store.store(("a",), {"v": 1})
        store.store(("b",), {"v": 2})
        os.utime(store.path_for(("a",)), (now - 100, now - 100))
        os.utime(store.path_for(("b",)), (now - 50, now - 50))
        assert store.lookup(("a",)) is not None  # touch refreshes mtime
        store.store(("c",), {"v": 3})
        assert ("a",) in store
        assert ("b",) not in store

    def test_large_stores_evict_in_batches(self, tmp_path):
        """Past the bound, big caches prune a batch at once so the
        O(entries) tree scan amortizes instead of running per store.

        DiskArtifactCache-specific: the indexed store evicts exactly
        (O(1) per store), covered in ``test_index.py``."""
        import os

        store = DiskArtifactCache(tmp_path / "s", max_entries=32)
        now = time.time()
        for k in range(32):
            store.store((f"k{k}",), {"v": k})
            # Back-date: k0 oldest ... k31 newest, all before "now".
            stamp = now - (64 - k)
            os.utime(store.path_for((f"k{k}",)), (stamp, stamp))
        store.store(("k32",), {"v": 32})
        # target = 32 - (32 // 16 - 1) = 31: the two oldest went at once.
        assert len(store) == 31
        assert store.stats.evictions == 2
        assert ("k0",) not in store and ("k1",) not in store
        assert ("k2",) in store and ("k32",) in store
        # No further prune until the bound is exceeded again.
        store.store(("k33",), {"v": 33})
        assert len(store) == 32 and store.stats.evictions == 2

    def test_restore_of_existing_key_does_not_grow(self, store_cls,
                                                   tmp_path):
        store = store_cls(tmp_path / "s", max_entries=2)
        for _ in range(5):
            store.store(("same",), {"v": 1})
        assert len(store) == 1
        assert store.stats.evictions == 0


class TestWorkerShipping:
    def test_pickle_round_trip_shares_the_directory(self, store):
        store.store(("k",), {"v": 7})
        store.lookup(("k",))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.max_entries == store.max_entries
        assert clone.stats.lookups == 0  # stats are per-process
        assert clone.lookup(("k",)) == {"v": 7}
