"""Batch design-space exploration: shapes, caching, parallel workers."""

import pytest

from repro.circuits import build
from repro.core import PMOptions
from repro.pipeline import (
    ExplorationPoint,
    ExplorationResult,
    FlowConfig,
    clear_explore_cache,
    explore,
)

CIRCUITS = ["dealer", "gcd", "vender"]
BUDGETS = [5, 6, 7]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_explore_cache()
    yield
    clear_explore_cache()


class TestShape:
    def test_full_cross_product(self):
        result = explore(CIRCUITS, BUDGETS)
        assert isinstance(result, ExplorationResult)
        assert len(result.points) == 9
        assert all(isinstance(p, ExplorationPoint) for p in result.points)
        assert result.circuits() == ("dealer", "gcd", "vender")
        assert {p.n_steps for p in result.points} == set(BUDGETS)

    def test_points_carry_synthesis_summaries(self):
        result = explore(["gcd"], [7])
        point = result.points[0]
        assert point.circuit == "gcd"
        assert point.managed_muxes == 2
        assert point.power_reduction_pct == pytest.approx(11.76, abs=0.01)
        assert point.area > 0 and point.controller_literals > 0
        assert point.allocation_dict  # e.g. {'-': 1, '<': 1, 'mux': 1}

    def test_per_circuit_budget_mapping(self):
        result = explore(["dealer", "gcd"],
                         {"dealer": [5, 6], "gcd": [7]})
        assert [(p.circuit, p.n_steps) for p in result.points] == \
            [("dealer", 5), ("dealer", 6), ("gcd", 7)]

    def test_multiple_configs_per_point(self):
        configs = [FlowConfig(label="pm"),
                   FlowConfig(pm=PMOptions(enabled=False),
                              label="baseline")]
        result = explore(["gcd"], [7], configs=configs)
        labels = [p.config_label for p in result.points]
        assert labels == ["pm", "baseline"]
        by_label = {p.config_label: p for p in result.points}
        assert by_label["pm"].managed_muxes > 0
        assert by_label["baseline"].managed_muxes == 0

    def test_cdfg_objects_accepted(self, abs_diff_graph):
        result = explore([abs_diff_graph], [3])
        assert result.points[0].circuit == abs_diff_graph.name
        assert result.points[0].managed_muxes == 1

    def test_helpers(self):
        result = explore(CIRCUITS, BUDGETS)
        assert len(result.for_circuit("gcd")) == 3
        best = result.best()
        assert best.power_reduction_pct == \
            max(p.power_reduction_pct for p in result.points)
        table = result.table()
        assert "dealer" in table and "stage-cache hits" in table

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="at least one circuit"):
            explore([], BUDGETS)
        with pytest.raises(TypeError, match="registry name or CDFG"):
            explore([42], BUDGETS)
        with pytest.raises(KeyError):
            explore(["nonesuch"], BUDGETS)


class TestCaching:
    def test_second_sweep_is_served_from_cache(self):
        cold = explore(CIRCUITS, BUDGETS)
        warm = explore(CIRCUITS, BUDGETS)
        assert cold.cache_misses > 0
        assert warm.cache_hits > 0
        assert warm.cache_misses == 0
        # Identical synthesis outcomes either way.
        assert [(p.circuit, p.n_steps, p.managed_muxes, p.area,
                 p.power_reduction_pct) for p in cold.points] == \
               [(p.circuit, p.n_steps, p.managed_muxes, p.area,
                 p.power_reduction_pct) for p in warm.points]

    def test_first_sweep_already_shares_analysis_across_budgets(self):
        cold = explore(["gcd"], BUDGETS)
        # Budgets 6 and 7 reuse gcd's budget-independent analyze artifact.
        assert cold.cache_hits >= 2


class TestParallel:
    def test_worker_processes_match_serial_results(self):
        serial = explore(CIRCUITS, [5, 6])
        parallel = explore(CIRCUITS, [5, 6], workers=2)
        assert [(p.circuit, p.n_steps, p.managed_muxes, p.area,
                 p.power_reduction_pct) for p in parallel.points] == \
               [(p.circuit, p.n_steps, p.managed_muxes, p.area,
                 p.power_reduction_pct) for p in serial.points]
