"""Batch design-space exploration: shapes, caching, parallel workers,
persistent stores, journaled resume, and Pareto reduction."""

import json
import time

import pytest

from repro.circuits import build
from repro.core import PMOptions
from repro.pipeline import (
    DiskArtifactCache,
    ExplorationPoint,
    ExplorationResult,
    FlowConfig,
    clear_explore_cache,
    explore,
    job_key,
)

CIRCUITS = ["dealer", "gcd", "vender"]
BUDGETS = [5, 6, 7]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_explore_cache()
    yield
    clear_explore_cache()


class TestShape:
    def test_full_cross_product(self):
        result = explore(CIRCUITS, BUDGETS)
        assert isinstance(result, ExplorationResult)
        assert len(result.points) == 9
        assert all(isinstance(p, ExplorationPoint) for p in result.points)
        assert result.circuits() == ("dealer", "gcd", "vender")
        assert {p.n_steps for p in result.points} == set(BUDGETS)

    def test_points_carry_synthesis_summaries(self):
        result = explore(["gcd"], [7])
        point = result.points[0]
        assert point.circuit == "gcd"
        assert point.managed_muxes == 2
        assert point.power_reduction_pct == pytest.approx(11.76, abs=0.01)
        assert point.area > 0 and point.controller_literals > 0
        assert point.allocation_dict  # e.g. {'-': 1, '<': 1, 'mux': 1}

    def test_per_circuit_budget_mapping(self):
        result = explore(["dealer", "gcd"],
                         {"dealer": [5, 6], "gcd": [7]})
        assert [(p.circuit, p.n_steps) for p in result.points] == \
            [("dealer", 5), ("dealer", 6), ("gcd", 7)]

    def test_multiple_configs_per_point(self):
        configs = [FlowConfig(label="pm"),
                   FlowConfig(pm=PMOptions(enabled=False),
                              label="baseline")]
        result = explore(["gcd"], [7], configs=configs)
        labels = [p.config_label for p in result.points]
        assert labels == ["pm", "baseline"]
        by_label = {p.config_label: p for p in result.points}
        assert by_label["pm"].managed_muxes > 0
        assert by_label["baseline"].managed_muxes == 0

    def test_cdfg_objects_accepted(self, abs_diff_graph):
        result = explore([abs_diff_graph], [3])
        assert result.points[0].circuit == abs_diff_graph.name
        assert result.points[0].managed_muxes == 1

    def test_helpers(self):
        result = explore(CIRCUITS, BUDGETS)
        assert len(result.for_circuit("gcd")) == 3
        best = result.best()
        assert best.power_reduction_pct == \
            max(p.power_reduction_pct for p in result.points)
        table = result.table()
        assert "dealer" in table and "stage-cache hits" in table

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="at least one circuit"):
            explore([], BUDGETS)
        with pytest.raises(TypeError, match="registry name or CDFG"):
            explore([42], BUDGETS)
        with pytest.raises(KeyError):
            explore(["nonesuch"], BUDGETS)


class TestCaching:
    def test_second_sweep_is_served_from_cache(self):
        cold = explore(CIRCUITS, BUDGETS)
        warm = explore(CIRCUITS, BUDGETS)
        assert cold.cache_misses > 0
        assert warm.cache_hits > 0
        assert warm.cache_misses == 0
        # Identical synthesis outcomes either way.
        assert [(p.circuit, p.n_steps, p.managed_muxes, p.area,
                 p.power_reduction_pct) for p in cold.points] == \
               [(p.circuit, p.n_steps, p.managed_muxes, p.area,
                 p.power_reduction_pct) for p in warm.points]

    def test_first_sweep_already_shares_analysis_across_budgets(self):
        cold = explore(["gcd"], BUDGETS)
        # Budgets 6 and 7 reuse gcd's budget-independent analyze artifact.
        assert cold.cache_hits >= 2


class TestParallel:
    def test_worker_processes_match_serial_results(self):
        serial = explore(CIRCUITS, [5, 6])
        parallel = explore(CIRCUITS, [5, 6], workers=2)
        assert [(p.circuit, p.n_steps, p.managed_muxes, p.area,
                 p.power_reduction_pct) for p in parallel.points] == \
               [(p.circuit, p.n_steps, p.managed_muxes, p.area,
                 p.power_reduction_pct) for p in serial.points]

    def test_chunk_size_does_not_change_results(self):
        whole = explore(CIRCUITS, [5, 6], workers=2, chunk_size=6)
        tiny = explore(CIRCUITS, [5, 6], workers=2, chunk_size=1)
        assert [(p.circuit, p.n_steps, p.area) for p in whole.points] == \
               [(p.circuit, p.n_steps, p.area) for p in tiny.points]


def _shape(result):
    return [(p.circuit, p.n_steps, p.managed_muxes, p.area,
             p.power_reduction_pct) for p in result.points]


class TestDiskStore:
    def test_second_sweep_hits_the_store_and_is_faster(self, tmp_path):
        """The acceptance-criteria pin: a warm store run reports >0 disk
        hits, computes nothing, and takes measurably less wall time."""
        start = time.perf_counter()
        cold = explore(CIRCUITS, BUDGETS, store=tmp_path / "store")
        cold_s = time.perf_counter() - start
        assert cold.store_misses > 0
        # A fresh store instance on the same directory: only the disk is
        # shared, exactly like a new process on a later day.  Timing is
        # best-of-two so a one-off scheduler hiccup can't flake the pin.
        warm_s = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            warm = explore(CIRCUITS, BUDGETS,
                           store=DiskArtifactCache(tmp_path / "store"))
            warm_s = min(warm_s, time.perf_counter() - start)
        assert warm.store_hits > 0
        assert warm.store_misses == 0
        assert warm.cache_misses == 0
        assert warm_s < cold_s
        assert _shape(cold) == _shape(warm)

    def test_store_accepts_a_path(self, tmp_path):
        result = explore(["gcd"], [7], store=tmp_path / "s")
        assert result.store_misses > 0
        assert (tmp_path / "s").is_dir()

    def test_store_shared_across_worker_processes(self, tmp_path):
        cold = explore(CIRCUITS, [5, 6], store=tmp_path / "s")
        warm = explore(CIRCUITS, [5, 6], workers=2,
                       store=DiskArtifactCache(tmp_path / "s"))
        assert warm.store_hits > 0 and warm.store_misses == 0
        assert _shape(cold) == _shape(warm)

    def test_point_level_store_accounting(self, tmp_path):
        result = explore(["gcd"], [7, 7], store=tmp_path / "s")
        first, second = result.points
        assert first.store_misses > 0
        assert second.store_hits > 0 and second.store_misses == 0
        assert "disk-store hits" in result.table()

    def test_without_store_no_store_stats(self):
        result = explore(["gcd"], [7])
        assert result.store_hits == 0 and result.store_misses == 0
        assert "disk-store" not in result.table()


class TestResume:
    def test_journal_written_and_replayed(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = explore(CIRCUITS, [5, 6], resume=journal)
        assert first.resumed == 0
        assert journal.exists()
        second = explore(CIRCUITS, [5, 6], resume=journal)
        assert second.resumed == len(second.points) == 6
        assert _shape(first) == _shape(second)

    def test_kill_resume_completes_without_recompute(self, tmp_path,
                                                     monkeypatch):
        """Truncating the journal simulates a mid-sweep kill (including
        a torn trailing record); the re-run computes exactly the missing
        points."""
        journal = tmp_path / "sweep.jsonl"
        full = explore(CIRCUITS, BUDGETS, resume=journal)
        lines = journal.read_text().splitlines()
        assert len(lines) == 1 + 9  # meta + one record per point
        # Keep meta + 4 records, then a torn half-record.
        journal.write_text("\n".join(lines[:5]) + '\n{"key": "torn')

        import importlib

        # The package attribute `explore` is the function; fetch the
        # submodule itself to patch its internals.
        explore_mod = importlib.import_module("repro.pipeline.explore")
        real_run_point = explore_mod._run_point
        computed = []

        def counting_run_point(spec, config, sim_vectors, store):
            computed.append(spec)
            return real_run_point(spec, config, sim_vectors, store)

        monkeypatch.setattr(explore_mod, "_run_point", counting_run_point)
        resumed = explore(CIRCUITS, BUDGETS, resume=journal)
        assert resumed.resumed == 4
        assert len(computed) == 5  # only the missing grid points
        assert _shape(resumed) == _shape(full)
        # The journal is whole again: a third run recomputes nothing.
        computed.clear()
        third = explore(CIRCUITS, BUDGETS, resume=journal)
        assert computed == [] and third.resumed == 9

    def test_grid_extension_reuses_the_journal(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        explore(["gcd"], [6, 7], resume=journal)
        extended = explore(["gcd", "dealer"], [6, 7], resume=journal)
        assert extended.resumed == 2  # the gcd points were journaled
        assert len(extended.points) == 4

    def test_journal_records_are_json_with_stable_keys(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        explore(["gcd"], [7], resume=journal)
        meta, record = [json.loads(line)
                        for line in journal.read_text().splitlines()]
        assert meta["kind"] == "explore-journal"
        expected_key = job_key(("name", "gcd"),
                               FlowConfig(n_steps=7), 0)
        assert record["key"] == expected_key
        point = ExplorationPoint.from_dict(record["point"])
        assert point.circuit == "gcd" and point.n_steps == 7

    def test_resume_with_workers(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        explore(["gcd"], [6], resume=journal)
        result = explore(CIRCUITS, [5, 6], workers=2, resume=journal)
        assert result.resumed == 1
        assert len(result.points) == 6

    def test_config_changes_invalidate_journal_entries(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        explore(["gcd"], [7], resume=journal)
        other = explore(["gcd"], [7],
                        configs=[FlowConfig(scheduler="force_directed")],
                        resume=journal)
        assert other.resumed == 0  # different config -> different job key


class TestPointRoundTrip:
    def test_to_from_dict(self):
        point = explore(["gcd"], [7]).points[0]
        clone = ExplorationPoint.from_dict(
            json.loads(json.dumps(point.to_dict())))
        assert clone == point

    def test_unknown_fields_ignored_for_forward_compat(self):
        point = explore(["gcd"], [7]).points[0]
        data = point.to_dict()
        data["future_field"] = "ignored"
        assert ExplorationPoint.from_dict(data) == point


class TestPareto:
    def _result(self, rows):
        points = tuple(
            ExplorationPoint(circuit=c, n_steps=steps, config_label="t",
                             scheduler="list", managed_muxes=0,
                             power_reduction_pct=saved, area=area,
                             controller_literals=1, allocation=(),
                             cache_hits=0, cache_misses=0)
            for c, steps, area, saved in rows)
        return ExplorationResult(points=points)

    def test_dominated_points_are_dropped(self):
        result = self._result([
            ("a", 5, 100, 30.0),   # front
            ("b", 5, 120, 20.0),   # dominated by a (worse area + power)
            ("c", 4, 150, 10.0),   # front: best latency
            ("d", 6, 90, 35.0),    # front: best area and power
        ])
        front = result.pareto()
        assert [p.circuit for p in front.points] == ["a", "c", "d"]

    def test_single_objective(self):
        result = self._result([
            ("a", 5, 100, 30.0),
            ("b", 6, 90, 20.0),
        ])
        front = result.pareto(objectives=("area",))
        assert [p.circuit for p in front.points] == ["b"]

    def test_duplicate_scores_all_survive(self):
        result = self._result([
            ("a", 5, 100, 30.0),
            ("b", 5, 100, 30.0),
        ])
        assert len(result.pareto().points) == 2

    def test_simulated_power_preferred_when_present(self):
        base = self._result([("a", 5, 100, 30.0), ("b", 5, 100, 10.0)])
        # Static estimate says a wins; simulation says b wins.
        from dataclasses import replace

        points = (replace(base.points[0], simulated_reduction_pct=5.0),
                  replace(base.points[1], simulated_reduction_pct=25.0))
        front = ExplorationResult(points=points).pareto(
            objectives=("power",))
        assert [p.circuit for p in front.points] == ["b"]

    def test_real_sweep_front_is_consistent(self):
        result = explore(CIRCUITS, BUDGETS)
        front = result.pareto()
        assert 0 < len(front.points) <= len(result.points)
        fronts = {p.circuit for p in front.points}
        # Every circuit's cheapest-area point can only be dominated by
        # points of other circuits; the front must be non-empty per
        # objective extreme.
        best_area = min(result.points, key=lambda p: p.area)
        assert best_area.circuit in fronts or any(
            p.area <= best_area.area for p in front.points)

    def test_bad_objective_rejected(self):
        with pytest.raises(KeyError, match="unknown Pareto objective"):
            self._result([("a", 5, 1, 1.0)]).pareto(objectives=("beauty",))
        with pytest.raises(ValueError, match="at least one objective"):
            self._result([("a", 5, 1, 1.0)]).pareto(objectives=())
