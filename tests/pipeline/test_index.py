"""IndexedArtifactStore specifics: exact LRU, the SQLite index, gc,
interop with plain DiskArtifactCache writers, concurrent eviction.

The shared store contract (miss/hit, persistence, corruption, pickling)
runs against this class too — see ``test_store.py``; here live only the
behaviors the index adds.
"""

import concurrent.futures
import sqlite3

import pytest

from repro.pipeline import DiskArtifactCache, IndexedArtifactStore
from repro.pipeline.index import INDEX_NAME


@pytest.fixture
def store(tmp_path):
    return IndexedArtifactStore(tmp_path / "store")


class TestExactEviction:
    def test_evicts_exactly_to_the_bound(self, tmp_path):
        """Unlike DiskArtifactCache's amortized batches, the indexed
        store holds len() == max_entries after every overflow."""
        store = IndexedArtifactStore(tmp_path / "s", max_entries=32)
        for k in range(40):
            store.store((f"k{k}",), {"v": k})
            assert len(store) <= 32
        assert len(store) == 32
        assert store.stats.evictions == 8
        # Exactly the 8 oldest went, in insertion (= seq) order.
        assert all((f"k{k}",) not in store for k in range(8))
        assert all((f"k{k}",) in store for k in range(8, 40))

    def test_recency_is_call_order_not_mtime(self, tmp_path):
        """The index sequences recency; touching file mtimes (which
        would reorder the plain cache's LRU) changes nothing."""
        import os
        import time

        store = IndexedArtifactStore(tmp_path / "s", max_entries=2)
        store.store(("old",), {"v": 1})
        store.store(("new",), {"v": 2})
        # Make "new" look ancient on disk; the index still knows better.
        ancient = time.time() - 10_000
        os.utime(store.path_for(("new",)), (ancient, ancient))
        store.store(("c",), {"v": 3})
        assert ("old",) not in store
        assert ("new",) in store

    def test_just_written_entry_is_never_the_victim(self, tmp_path):
        store = IndexedArtifactStore(tmp_path / "s", max_entries=1)
        for k in range(5):
            store.store((f"k{k}",), {"v": k})
            assert store.lookup((f"k{k}",)) == {"v": k}
        assert len(store) == 1


class TestIndex:
    def test_index_file_lives_in_the_root(self, store):
        store.store(("k",), {"v": 1})
        assert (store.root / INDEX_NAME).exists()

    def test_len_matches_count_without_scanning(self, store):
        for k in range(10):
            store.store((f"k{k}",), {"v": k})
        assert len(store) == 10

    def test_total_bytes_tracks_entry_sizes(self, store):
        assert store.total_bytes() == 0
        store.store(("k",), {"v": list(range(100))})
        size = store.path_for(("k",)).stat().st_size
        assert store.total_bytes() == size

    def test_lookup_of_vanished_file_drops_the_row(self, store):
        store.store(("k",), {"v": 1})
        store.path_for(("k",)).unlink()
        assert store.lookup(("k",)) is None
        assert len(store) == 0

    def test_format_mismatch_rebuilds_the_index(self, tmp_path):
        store = IndexedArtifactStore(tmp_path / "s")
        store.store(("k",), {"v": 1})
        store.close()
        with sqlite3.connect(store.index_path) as conn:
            conn.execute("UPDATE meta SET v = 999 WHERE k='format'")
        reopened = IndexedArtifactStore(tmp_path / "s")
        assert len(reopened) == 0      # index dropped...
        assert ("k",) in reopened      # ...but the tree is the truth
        assert reopened.gc()["adopted"] == 1
        assert len(reopened) == 1

    def test_close_is_idempotent_and_reopens_lazily(self, store):
        store.store(("k",), {"v": 1})
        store.close()
        store.close()
        assert store.lookup(("k",)) == {"v": 1}


class TestGC:
    def test_adopts_entries_a_plain_cache_wrote(self, tmp_path):
        plain = DiskArtifactCache(tmp_path / "s")
        plain.store(("a",), {"v": 1})
        plain.store(("b",), {"v": 2})
        store = IndexedArtifactStore(tmp_path / "s")
        assert len(store) == 0         # index knows nothing yet
        assert ("a",) in store         # but membership is file-based
        outcome = store.gc()
        assert outcome["adopted"] == 2
        assert len(store) == 2
        assert store.total_bytes() > 0
        assert store.lookup(("a",)) == {"v": 1}

    def test_drops_rows_for_vanished_files(self, store):
        store.store(("a",), {"v": 1})
        store.store(("b",), {"v": 2})
        store.path_for(("a",)).unlink()
        outcome = store.gc()
        assert outcome["dropped"] == 1
        assert outcome["entries"] == 1

    def test_reapplies_the_bound(self, tmp_path):
        # An unindexed writer overfills the tree; gc brings it back.
        plain = DiskArtifactCache(tmp_path / "s", max_entries=100)
        for k in range(10):
            plain.store((f"k{k}",), {"v": k})
        store = IndexedArtifactStore(tmp_path / "s", max_entries=4)
        outcome = store.gc()
        assert outcome["adopted"] == 10
        assert outcome["evicted"] == 6
        assert len(store) == 4

    def test_noop_on_clean_store(self, store):
        store.store(("k",), {"v": 1})
        assert store.gc() == {"entries": 1, "adopted": 0,
                              "dropped": 0, "evicted": 0}


class TestConcurrency:
    def test_concurrent_writers_evict_disjoint_victims(self, tmp_path):
        """Hammer one bounded store from many threads: the claim-then-
        unlink protocol keeps the index exact (the mtime scan this
        replaces could double-count or over-evict here)."""
        root = tmp_path / "s"
        writers = [IndexedArtifactStore(root, max_entries=16)
                   for _ in range(4)]

        def hammer(writer, base):
            for k in range(40):
                writer.store((f"w{base}-{k}",), {"v": k})
            return writer.stats.evictions

        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            evictions = list(pool.map(hammer, writers, range(4)))
        fresh = IndexedArtifactStore(root, max_entries=16)
        assert len(fresh) == 16
        # Every over-bound store evicted exactly once in aggregate:
        # 160 stores into 16 slots -> 144 evictions, no double counts.
        assert sum(evictions) == 144
        assert fresh.gc()["dropped"] == 0  # index and tree agree

    def test_eviction_tolerates_prestolen_files(self, tmp_path):
        # Simulate a racing evictor having already unlinked the victim.
        store = IndexedArtifactStore(tmp_path / "s", max_entries=2)
        store.store(("a",), {"v": 1})
        store.store(("b",), {"v": 2})
        store.path_for(("a",)).unlink()
        store.store(("c",), {"v": 3})  # evicts "a": row gone, file gone
        assert len(store) == 2
        assert store.lookup(("c",)) == {"v": 3}
