"""Pipeline integration with the compiled simulation engine."""

import pytest

from repro.circuits import build
from repro.pipeline import FlowConfig, Pipeline, explore, run_pair
from repro.pipeline.explore import clear_explore_cache
from repro.power.simulated import MonteCarloPower, compare_designs


class TestVerifyStage:
    def test_verify_runs_functional_differential(self, dealer_graph):
        ctx = Pipeline().run_context(dealer_graph,
                                     FlowConfig(n_steps=6, verify=True))
        assert ctx.get("verified") is True

    def test_verify_off_skips(self, dealer_graph):
        ctx = Pipeline().run_context(dealer_graph,
                                     FlowConfig(n_steps=6, verify=False))
        assert ctx.get("verified") is False


class TestSimulatedReport:
    def test_result_simulated_report(self, dealer_graph):
        result = Pipeline().run(dealer_graph, FlowConfig(n_steps=6))
        power = result.simulated_report(n_vectors=64)
        assert power.samples == 64
        assert power.total > 0

    def test_result_simulated_report_monte_carlo(self, dealer_graph):
        result = Pipeline().run(dealer_graph, FlowConfig(n_steps=6))
        power = result.simulated_report(rel_tol=0.2)
        assert isinstance(power, MonteCarloPower)
        assert power.converged


class TestExploreSimulation:
    def test_sim_vectors_populates_reduction(self):
        clear_explore_cache()
        space = explore(["dealer"], budgets=[6], sim_vectors=64)
        (point,) = space.points
        assert point.simulated_reduction_pct is not None
        pair = run_pair(build("dealer"), FlowConfig(n_steps=6))
        expected = compare_designs(pair.baseline.design, pair.managed.design,
                                   n_vectors=64)
        assert point.simulated_reduction_pct == pytest.approx(
            expected.reduction_pct)

    def test_default_explore_skips_simulation(self):
        clear_explore_cache()
        space = explore(["dealer"], budgets=[6])
        (point,) = space.points
        assert point.simulated_reduction_pct is None
