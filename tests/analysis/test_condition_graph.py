"""Condition graphs and their agreement with the mutex analysis."""

import pytest
from hypothesis import given, settings

from repro.analysis.condition_graph import (
    ConditionSet,
    Relation,
    build_condition_graph,
)
from repro.analysis.mutex import are_mutually_exclusive
from repro.circuits import abs_diff, build
from tests.strategies import circuits


class TestConditionSets:
    def test_unconditional(self):
        assert ConditionSet().is_unconditional
        assert not ConditionSet(frozenset({(1, 0)})).is_unconditional

    def test_contradiction(self):
        a = ConditionSet(frozenset({(1, 0)}))
        b = ConditionSet(frozenset({(1, 1)}))
        assert a.contradicts(b)
        assert a.conjoin(b) is None

    def test_conjoin_merges(self):
        a = ConditionSet(frozenset({(1, 0)}))
        b = ConditionSet(frozenset({(2, 1)}))
        merged = a.conjoin(b)
        assert merged.literals == {(1, 0), (2, 1)}


class TestAbsDiff:
    def test_sub_conditions(self):
        g = abs_diff()
        cg = build_condition_graph(g)
        comp = next(n for n in g if n.name == "c")
        s0 = next(n for n in g if n.name == "b_minus_a")
        s1 = next(n for n in g if n.name == "a_minus_b")
        assert cg.condition_of(s0.nid).literals == {(comp.nid, 0)}
        assert cg.condition_of(s1.nid).literals == {(comp.nid, 1)}
        assert cg.relation(s0.nid, s1.nid) is Relation.DISJOINT

    def test_comparison_unconditional(self):
        g = abs_diff()
        cg = build_condition_graph(g)
        comp = next(n for n in g if n.name == "c")
        assert cg.condition_of(comp.nid).is_unconditional

    def test_execution_probabilities(self):
        g = abs_diff()
        cg = build_condition_graph(g)
        s1 = next(n for n in g if n.name == "a_minus_b")
        assert cg.execution_probability(s1.nid) == 0.5
        assert cg.execution_probability(s1.nid, p_one=0.8) == \
            pytest.approx(0.8)


class TestHierarchy:
    def test_nested_subsumption_in_dealer(self):
        """dealer's margin (nested two deep) is subsumed by payout's mux
        (one deep) on the same outer condition."""
        g = build("dealer")
        cg = build_condition_graph(g)
        margin = next(n for n in g if n.name == "margin")
        payout = next(n for n in g if n.name == "payout")
        relation = cg.relation(payout.nid, margin.nid)
        assert relation is Relation.A_SUBSUMES_B
        assert cg.execution_probability(margin.nid) == 0.25
        assert cg.execution_probability(payout.nid) == 0.5

    def test_vender_multipliers_disjoint_and_equal_probability(self):
        g = build("vender")
        cg = build_condition_graph(g)
        p2 = next(n for n in g if n.name == "p2")
        p3 = next(n for n in g if n.name == "p3")
        assert cg.disjoint(p2.nid, p3.nid)
        assert cg.execution_probability(p2.nid) == \
            cg.execution_probability(p3.nid) == 0.5


class TestAgreementWithMutex:
    @pytest.mark.parametrize("name", ["dealer", "gcd", "vender"])
    def test_disjointness_matches_mutex_analysis(self, name):
        g = build(name)
        cg = build_condition_graph(g)
        ops = [n.nid for n in g.operations()]
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                assert cg.disjoint(a, b) == are_mutually_exclusive(g, a, b)

    @settings(max_examples=40, deadline=None)
    @given(circuits(max_ops=10))
    def test_mutex_implies_disjoint_on_random_circuits(self, graph):
        """The mutex analysis is sound-but-incomplete; the condition graph
        finds at least everything it finds (e.g. it additionally marks
        dead code disjoint from everything)."""
        cg = build_condition_graph(graph)
        ops = [n.nid for n in graph.operations()][:8]
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if are_mutually_exclusive(graph, a, b):
                    assert cg.disjoint(a, b)
