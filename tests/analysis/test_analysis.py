"""Circuit statistics (Table I), mutual exclusion, area model."""

import pytest

from repro.analysis.area import AreaBreakdown, allocation_area, area_ratio
from repro.analysis.mutex import (
    are_mutually_exclusive,
    can_share,
    guard_requirements,
    mutually_exclusive_pairs,
)
from repro.analysis.stats import circuit_stats
from repro.circuits import PAPER_TABLE1, build
from repro.ir.ops import ResourceClass
from repro.sched.resources import Allocation


class TestTable1:
    """The headline structural reproduction: operation counts match the
    paper's Table I exactly for all four circuits."""

    @pytest.mark.parametrize("name", sorted(PAPER_TABLE1))
    def test_operation_counts_exact(self, name):
        stats = circuit_stats(build(name))
        paper = PAPER_TABLE1[name]
        assert stats.mux == paper.mux
        assert stats.comp == paper.comp
        assert stats.add == paper.add
        assert stats.sub == paper.sub
        assert stats.mul == paper.mul

    @pytest.mark.parametrize("name", ["dealer", "gcd", "vender"])
    def test_critical_paths_exact(self, name):
        assert circuit_stats(build(name)).critical_path == \
            PAPER_TABLE1[name].critical_path

    def test_cordic_critical_path_documented_difference(self):
        """Our cordic reconstruction has cp=32 (paper: 48); the difference
        is pinned here and discussed in EXPERIMENTS.md."""
        assert circuit_stats(build("cordic")).critical_path == 32


class TestMutex:
    def test_abs_diff_subs_are_exclusive(self, abs_diff_graph):
        g = abs_diff_graph
        s0 = next(n for n in g if n.name == "b_minus_a")
        s1 = next(n for n in g if n.name == "a_minus_b")
        assert are_mutually_exclusive(g, s0.nid, s1.nid)
        assert frozenset((s0.nid, s1.nid)) in mutually_exclusive_pairs(g)

    def test_comp_not_exclusive_with_subs(self, abs_diff_graph):
        g = abs_diff_graph
        comp = next(n for n in g if n.name == "c")
        sub = next(n for n in g if n.name == "a_minus_b")
        assert not are_mutually_exclusive(g, comp.nid, sub.nid)

    def test_can_share_requires_same_class(self, abs_diff_graph):
        g = abs_diff_graph
        s0 = next(n for n in g if n.name == "b_minus_a")
        s1 = next(n for n in g if n.name == "a_minus_b")
        comp = next(n for n in g if n.name == "c")
        assert can_share(g, s0.nid, s1.nid)
        assert not can_share(g, s0.nid, comp.nid)

    def test_vender_multipliers_exclusive(self, vender_graph):
        g = vender_graph
        p2 = next(n for n in g if n.name == "p2")
        p3 = next(n for n in g if n.name == "p3")
        assert can_share(g, p2.nid, p3.nid)

    def test_guard_requirements_structure(self, abs_diff_graph):
        g = abs_diff_graph
        requirements = guard_requirements(g)
        comp = next(n for n in g if n.name == "c")
        s1 = next(n for n in g if n.name == "a_minus_b")
        assert requirements[s1.nid] == {comp.nid: {1}}

    def test_cordic_addsub_pairs_exclusive(self, cordic_graph):
        g = cordic_graph
        xa = next(n for n in g if n.name == "xa3")
        xb = next(n for n in g if n.name == "xb3")
        assert are_mutually_exclusive(g, xa.nid, xb.nid)


class TestAreaModel:
    def test_allocation_area_scales_with_units(self):
        one = Allocation({ResourceClass.ADD: 1})
        two = Allocation({ResourceClass.ADD: 2})
        assert allocation_area(two) == 2 * allocation_area(one)

    def test_multiplier_dominates(self):
        mul = Allocation({ResourceClass.MUL: 1})
        add = Allocation({ResourceClass.ADD: 1})
        assert allocation_area(mul) > 5 * allocation_area(add)

    def test_breakdown_totals(self):
        area = AreaBreakdown(functional_units=100, registers=20,
                             interconnect=8, controller=12)
        assert area.datapath == 128
        assert area.total == 140

    def test_area_ratio(self):
        a = AreaBreakdown(100, 0, 0, 0)
        b = AreaBreakdown(110, 0, 0, 0)
        assert area_ratio(b, a) == pytest.approx(1.1)
        assert area_ratio(110, 100) == pytest.approx(1.1)
        with pytest.raises(ValueError):
            area_ratio(b, AreaBreakdown(0, 0, 0, 0))
