"""Structural gating-soundness verification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify_gating import (
    GatingUnsoundError,
    is_gating_sound,
    verify_gating,
)
from repro.circuits import abs_diff, build
from repro.core.pm_pass import PMOptions, apply_power_management
from repro.sched.timing import critical_path_length
from tests.strategies import circuits


class TestBenchmarksSound:
    @pytest.mark.parametrize("name,steps", [
        ("dealer", 4), ("dealer", 6),
        ("gcd", 5), ("gcd", 7),
        ("vender", 5), ("vender", 6),
        ("cordic", 48),
    ])
    def test_pm_pass_produces_sound_gating(self, name, steps):
        verify_gating(apply_power_management(build(name), steps))

    def test_partial_gating_sound(self):
        result = apply_power_management(
            abs_diff(), 3, PMOptions(partial=True))
        verify_gating(result)

    def test_empty_gating_trivially_sound(self):
        result = apply_power_management(abs_diff(), 2)
        assert is_gating_sound(result)


class TestUnsoundDetection:
    def test_gating_the_select_driver_is_unsound(self):
        """Disabling the comparison that drives the mux select would let a
        stale condition steer the output — must be flagged."""
        result = apply_power_management(abs_diff(), 3)
        g = result.graph
        comp = next(n for n in g if n.name == "c")
        mux = g.muxes()[0]
        result.gating = dict(result.gating)
        result.gating[comp.nid] = ((mux.nid, 1),)
        with pytest.raises(GatingUnsoundError, match="reaches output"):
            verify_gating(result)

    def test_gating_a_shared_op_is_unsound(self, dealer_graph):
        """An op that feeds an output directly can never be gated."""
        result = apply_power_management(dealer_graph, 6)
        g = result.graph
        total = next(n for n in g if n.name == "total")  # output-facing add
        some_mux = g.muxes()[0]
        result.gating = dict(result.gating)
        result.gating[total.nid] = ((some_mux.nid, 0),)
        assert not is_gating_sound(result)

    def test_wrong_side_is_unsound(self):
        """Gating a sub on the side that *uses* it must be flagged."""
        result = apply_power_management(abs_diff(), 3)
        g = result.graph
        mux = g.muxes()[0]
        sub1 = next(n for n in g if n.name == "a_minus_b")
        result.gating = dict(result.gating)
        result.gating[sub1.nid] = ((mux.nid, 0),)  # correct side is 1
        assert not is_gating_sound(result)


class TestProperty:
    @settings(max_examples=50, deadline=None)
    @given(circuits(max_ops=12), st.integers(min_value=0, max_value=3))
    def test_pass_always_sound_on_random_circuits(self, graph, slack):
        cp = critical_path_length(graph)
        result = apply_power_management(graph, cp + slack)
        verify_gating(result)

    @settings(max_examples=30, deadline=None)
    @given(circuits(max_ops=10), st.integers(min_value=0, max_value=2))
    def test_partial_pass_always_sound(self, graph, slack):
        cp = critical_path_length(graph)
        result = apply_power_management(graph, cp + slack,
                                        PMOptions(partial=True))
        verify_gating(result)
