"""Hypothesis strategies shared by the property-based tests.

``circuits()`` generates random, valid CDFGs: a pool of values grown by
random operations (with a bias toward muxes so power management has
something to find), every sink exported as an output — so there are no
dead operations and ``validate`` passes by construction.

``generated_circuits()`` draws from the richer :mod:`repro.gen` workload
generator instead — nested conditionals, mutually-exclusive branch
cones, shape presets — by sampling a (preset, seed) pair, so failures
shrink to a *named family member* (``gen:<preset>:<seed>``) that can be
rebuilt anywhere via ``circuits.build``.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.gen import random_cdfg
from repro.ir.builder import GraphBuilder
from repro.ir.graph import CDFG

_BINARY_OPS = ("add", "sub", "mul", "gt", "lt", "ge", "le", "eq", "ne")


@st.composite
def circuits(draw, max_ops: int = 12, max_inputs: int = 4) -> CDFG:
    builder = GraphBuilder("random")
    n_inputs = draw(st.integers(min_value=1, max_value=max_inputs))
    values = [builder.input(f"i{k}") for k in range(n_inputs)]

    n_ops = draw(st.integers(min_value=1, max_value=max_ops))
    for k in range(n_ops):
        kind = draw(st.sampled_from(("binary", "binary", "mux", "mux", "const")))
        if kind == "const":
            values.append(builder.const(draw(st.integers(-100, 100))))
            continue
        if kind == "mux" and len(values) >= 3:
            sel, in0, in1 = (
                values[draw(st.integers(0, len(values) - 1))] for _ in range(3)
            )
            values.append(builder.mux(sel, in0, in1, name=f"m{k}"))
            continue
        op = draw(st.sampled_from(_BINARY_OPS))
        a = values[draw(st.integers(0, len(values) - 1))]
        b = values[draw(st.integers(0, len(values) - 1))]
        values.append(getattr(builder, op)(a, b, name=f"v{k}"))

    # Export every sink so no operation is dead.
    graph = builder.graph
    exported = 0
    for value in values:
        node = graph.node(value.nid)
        if node.is_schedulable and not graph.data_succs(value.nid):
            builder.output(value, f"o{exported}")
            exported += 1
    if exported == 0:
        builder.output(values[-1], "o0")
    return builder.build()


def generated_circuits(presets: tuple[str, ...] = ("tiny", "small",
                                                   "branchy", "deep"),
                       max_seed: int = 9_999):
    """Strategy over :mod:`repro.gen` family members.

    Each drawn graph is fully determined by its (preset, seed) pair and
    carries that spec as its name, so a failing example reproduces with
    ``build(graph.name)``.
    """
    return st.builds(
        lambda preset, seed: random_cdfg(seed, preset=preset),
        st.sampled_from(tuple(presets)),
        st.integers(min_value=0, max_value=max_seed),
    )


def opt_scenarios(presets: tuple[str, ...] = ("tiny", "small", "branchy"),
                  max_seed: int = 999, max_slack: int = 3):
    """Strategy over optimizer questions: a generated family member plus
    a feasible control-step budget (critical path + drawn slack).

    Shrinks toward the ``tiny`` preset, seed 0, zero slack — the
    smallest reproducible (graph, budget) pair."""
    from repro.sched.timing import critical_path_length

    return st.builds(
        lambda graph, slack: (graph, critical_path_length(graph) + slack),
        generated_circuits(presets, max_seed),
        st.integers(min_value=0, max_value=max_slack),
    )


def input_vector(graph: CDFG):
    """Strategy for one named input assignment of ``graph``."""
    names = [n.name for n in graph.inputs()]
    return st.fixed_dictionaries(
        {name: st.integers(min_value=-128, max_value=127) for name in names}
    )
