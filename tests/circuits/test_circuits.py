"""Benchmark circuit construction and registry."""

import pytest

from repro.analysis.stats import circuit_stats
from repro.circuits import (
    CIRCUITS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    TABLE2_BUDGETS,
    build,
    cordic,
)
from repro.ir.validate import validate


class TestRegistry:
    def test_all_four_circuits_registered(self):
        assert set(CIRCUITS) == {"dealer", "gcd", "vender", "cordic"}

    def test_build_by_name(self):
        assert build("dealer").name == "dealer"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown circuit"):
            build("mystery")

    def test_every_circuit_validates(self):
        for name in CIRCUITS:
            validate(build(name))

    def test_paper_tables_are_consistent(self):
        t2_names = {row.name for row in PAPER_TABLE2}
        assert t2_names == set(PAPER_TABLE1)
        assert set(TABLE2_BUDGETS) == set(PAPER_TABLE1)
        for row in PAPER_TABLE2:
            assert row.control_steps in TABLE2_BUDGETS[row.name]
        assert {r.name for r in PAPER_TABLE3} <= set(PAPER_TABLE1)


class TestCordicParameterization:
    def test_full_cordic_matches_paper_counts(self):
        stats = circuit_stats(cordic())
        assert (stats.mux, stats.comp, stats.add, stats.sub) == \
            (47, 16, 43, 46)

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_reduced_iteration_counts(self, n):
        """Non-16-iteration variants are regular: 3 mux/add/sub per iter."""
        stats = circuit_stats(cordic(n_iterations=n))
        assert stats.comp == n
        assert stats.mux == 3 * n
        assert stats.add == 3 * n
        assert stats.sub == 3 * n

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError, match="at least one iteration"):
            cordic(n_iterations=0)

    def test_width_parameter_bounds_shifts(self):
        g = cordic(n_iterations=16, width=8)
        from repro.ir.ops import Op
        for node in g:
            if node.op is Op.SHR:
                amount = g.node(node.operands[1])
                assert amount.value <= 7

    def test_critical_path_grows_linearly(self):
        from repro.sched.timing import critical_path_length
        cps = [critical_path_length(cordic(n_iterations=n))
               for n in (2, 4, 8)]
        assert cps == [4, 8, 16]
