"""CHStone-class kernel family (``chstone:*``)."""

import pytest

from repro.circuits import build
from repro.circuits.chstone import adpcm_predictor, jpeg_dct8, mips_datapath
from repro.core.pm_pass import apply_power_management
from repro.ir.ops import Op
from repro.ir.validate import validate
from repro.pipeline.cache import graph_fingerprint
from repro.sched.timing import critical_path_length
from repro.sim.reference import evaluate

ALL_SPECS = ("chstone:adpcm", "chstone:adpcm:5", "chstone:jpeg",
             "chstone:mips", "chstone:mips:3", "chstone:mips:8")


class TestFamilyRegistration:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_builds_and_validates(self, spec):
        graph = build(spec)
        validate(graph)
        assert critical_path_length(graph) >= 2

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_deterministic_by_spec(self, spec):
        assert graph_fingerprint(build(spec)) == \
            graph_fingerprint(build(spec))

    def test_default_args(self):
        assert graph_fingerprint(build("chstone:adpcm")) == \
            graph_fingerprint(adpcm_predictor(3))
        assert graph_fingerprint(build("chstone:mips")) == \
            graph_fingerprint(mips_datapath(6))

    @pytest.mark.parametrize("spec", [
        "chstone:adpcm:1", "chstone:adpcm:9", "chstone:mips:1",
        "chstone:mips:99", "chstone:jpeg:4", "chstone:adpcm:x",
    ])
    def test_bad_parameters_rejected(self, spec):
        with pytest.raises(ValueError, match="chstone"):
            build(spec)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="adpcm"):
            build("chstone:fft")


class TestKernelShapes:
    def test_adpcm_quantizer_depth_sets_code_width(self):
        for bits in (2, 4, 6):
            graph = adpcm_predictor(bits)
            rungs = [n for n in graph.operations()
                     if n.op is Op.GE and n.name.startswith("bit")]
            assert len(rungs) == bits

    def test_adpcm_is_gating_rich(self):
        graph = adpcm_predictor()
        pm = apply_power_management(graph, critical_path_length(graph) + 2)
        assert pm.managed_count >= 3

    def test_jpeg_has_the_llm_multiply_count(self):
        graph = jpeg_dct8()
        muls = [n for n in graph.operations() if n.op is Op.MUL]
        assert len(muls) == 11
        assert len(list(graph.outputs())) == 8

    def test_jpeg_is_a_negative_control_for_gating(self):
        graph = jpeg_dct8()
        assert not any(n.is_mux for n in graph.operations())

    def test_mips_mux_chain_depth_tracks_op_count(self):
        for n_ops in (2, 5, 8):
            graph = mips_datapath(n_ops)
            muxes = [n for n in graph.operations() if n.is_mux]
            assert len(muxes) == n_ops - 1

    def test_mips_decodes_each_opcode(self):
        """Functional sanity via the reference model: every opcode
        routes its own ALU result to the output."""
        graph = mips_datapath(4)
        rs, rt = 12, 5
        expected = {0: rs + rt, 1: rs - rt, 2: rs & rt, 3: rs | rt}
        for code, want in expected.items():
            out = evaluate(graph, {"op": code, "rs": rs, "rt": rt})
            assert out["result"] == want, code
            assert out["zero_flag"] == int(want == 0)

    def test_adpcm_reconstruction_is_signed(self):
        """sign path: predicted > sample must *decrease* the predictor."""
        graph = adpcm_predictor()
        out = evaluate(graph, {"sample": 10, "predicted": 90, "step": 16})
        assert out["predicted_out"] < 90
        out = evaluate(graph, {"sample": 90, "predicted": 10, "step": 16})
        assert out["predicted_out"] > 10
