"""ewf (negative control at scale) and the parameterized sparse FIR."""

import pytest

from repro.analysis.stats import circuit_stats
from repro.analysis.verify_gating import verify_gating
from repro.circuits.extra import ewf, sparse_fir
from repro.core.pm_pass import apply_power_management
from repro.flow import synthesize
from repro.power.static import static_power
from repro.sched.timing import critical_path_length
from repro.sim.reference import evaluate
from repro.sim.simulator import RTLSimulator
from repro.sim.vectors import random_vectors


class TestEWF:
    def test_classic_op_mix(self):
        stats = circuit_stats(ewf())
        assert (stats.mux, stats.comp, stats.add, stats.mul) == (0, 0, 26, 8)

    def test_no_power_management_possible(self):
        graph = ewf()
        cp = critical_path_length(graph)
        result = apply_power_management(graph, cp + 3)
        assert result.managed_count == 0
        assert static_power(result).reduction_pct == 0.0

    def test_full_flow_and_simulation(self):
        graph = ewf()
        cp = critical_path_length(graph)
        result = synthesize(graph, cp + 1, width=16)
        vectors = random_vectors(graph, 10, width=6, seed=2)
        sim = RTLSimulator(result.design)
        outputs, _ = sim.run_many(vectors)
        assert outputs == [evaluate(graph, v, width=16) for v in vectors]


class TestSparseFIR:
    @pytest.mark.parametrize("n", [1, 4, 8])
    def test_structure_scales(self, n):
        stats = circuit_stats(sparse_fir(n))
        assert stats.mux == n
        assert stats.comp == n
        assert stats.mul == n
        assert stats.add == n - 1

    def test_zero_taps_rejected(self):
        with pytest.raises(ValueError, match="at least one tap"):
            sparse_fir(0)

    def test_all_taps_managed_with_one_extra_step(self):
        graph = sparse_fir(8)
        cp = critical_path_length(graph)
        result = apply_power_management(graph, cp + 1)
        assert result.managed_count == 8
        verify_gating(result)

    def test_savings_scale_is_stable(self):
        """Per-tap structure is uniform: relative savings are n-independent
        once every tap is managed."""
        reductions = []
        for n in (4, 8, 12):
            graph = sparse_fir(n)
            cp = critical_path_length(graph)
            result = apply_power_management(graph, cp + 1)
            reductions.append(static_power(result).reduction_pct)
        assert max(reductions) - min(reductions) < 2.0
        assert all(r > 30.0 for r in reductions)

    def test_functional_semantics(self):
        graph = sparse_fir(3, threshold=4)
        out = evaluate(graph, {"x0": 10, "x1": 2, "x2": 5})
        # tap0: 10 > 4 -> 10*1; tap1: 2 <= 4 -> 0; tap2: 5 > 4 -> 5*5
        assert out["y"] == 10 + 0 + 25

    def test_simulated_equivalence_and_idles(self):
        graph = sparse_fir(6)
        cp = critical_path_length(graph)
        result = synthesize(graph, cp + 1)
        vectors = random_vectors(graph, 30, seed=21)
        sim = RTLSimulator(result.design)
        outputs, activity = sim.run_many(vectors)
        assert outputs == [evaluate(graph, v) for v in vectors]
        assert activity.total_idles() > 0  # some taps skipped
