"""diffeq negative control and the loop-unrolling transform."""

import math

import pytest

from repro.analysis.stats import circuit_stats
from repro.circuits import gcd
from repro.circuits.diffeq import diffeq
from repro.core.pm_pass import apply_power_management
from repro.flow import synthesize
from repro.ir.compose import unroll
from repro.ir.graph import CDFGError
from repro.ir.validate import validate
from repro.power.static import static_power
from repro.sched.timing import critical_path_length
from repro.sim.reference import evaluate
from repro.sim.simulator import RTLSimulator
from repro.sim.vectors import random_vectors


class TestDiffeqNegativeControl:
    def test_classic_op_mix(self):
        stats = circuit_stats(diffeq())
        assert (stats.mux, stats.comp, stats.add, stats.sub, stats.mul) == \
            (0, 0, 2, 2, 6)

    def test_no_muxes_means_no_power_management(self):
        graph = diffeq()
        cp = critical_path_length(graph)
        result = apply_power_management(graph, cp + 4)
        assert result.managed_count == 0
        assert static_power(result).reduction_pct == 0.0

    def test_euler_step_values(self):
        out = evaluate(diffeq(), {"x": 1, "y": 2, "u": 3, "dx": 1},
                       width=16)
        # x1 = 1+1; u1 = 3 - 3*1*3*1 - 3*2*1 = -12; y1 = 2 + 3*1 = 5
        assert out["x1"] == 2
        assert out["u1"] == -12
        assert out["y1"] == 5

    def test_full_flow_still_works(self):
        graph = diffeq()
        cp = critical_path_length(graph)
        result = synthesize(graph, cp + 1, width=16)
        vectors = random_vectors(graph, 20, width=8)
        sim = RTLSimulator(result.design)
        outputs, activity = sim.run_many(vectors)
        assert outputs == [evaluate(graph, v, width=16) for v in vectors]
        assert activity.total_idles() == 0  # nothing gatable


class TestUnroll:
    def test_gcd_unrolled_counts_scale(self):
        g4 = unroll(gcd(), 4, {"gcd": "a", "next_b": "b"})
        validate(g4)
        stats = circuit_stats(g4)
        assert stats.mux == 4 * 6
        assert stats.comp == 4 * 2
        assert stats.sub == 4 * 1
        assert stats.critical_path == 4 * 5

    def test_unrolled_gcd_computes_gcd(self):
        g4 = unroll(gcd(), 4, {"gcd": "a", "next_b": "b"})
        out = evaluate(g4, {"a": 48, "b": 18})
        assert out["gcd"] == math.gcd(48, 18)

    def test_identity_unroll(self):
        g1 = unroll(gcd(), 1, {"gcd": "a", "next_b": "b"})
        base = gcd()
        for vec in random_vectors(base, 15, seed=3):
            assert evaluate(g1, vec)["gcd"] == evaluate(base, vec)["gcd"]

    def test_per_iteration_outputs_exported(self):
        g2 = unroll(gcd(), 2, {"gcd": "a", "next_b": "b"})
        names = {o.name for o in g2.outputs()}
        assert {"done_i0", "done_i1", "gcd", "next_b"} <= names

    def test_pm_scales_with_unrolling(self):
        g3 = unroll(gcd(), 3, {"gcd": "a", "next_b": "b"})
        cp = critical_path_length(g3)
        result = apply_power_management(g3, cp)
        assert result.managed_count == 3 * 2
        assert static_power(result).reduction_pct == pytest.approx(
            11.76, abs=0.01)

    def test_unrolled_full_flow_equivalence(self):
        g2 = unroll(gcd(), 2, {"gcd": "a", "next_b": "b"})
        result = synthesize(g2, critical_path_length(g2))
        vectors = random_vectors(g2, 25, seed=17)
        sim = RTLSimulator(result.design)
        outputs, _ = sim.run_many(vectors)
        assert outputs == [evaluate(g2, v) for v in vectors]

    def test_bad_factor(self):
        with pytest.raises(ValueError, match="at least 1"):
            unroll(gcd(), 0, {"gcd": "a"})

    def test_unknown_feedback_output(self):
        with pytest.raises(CDFGError, match="not an output"):
            unroll(gcd(), 2, {"nope": "a"})

    def test_unknown_feedback_input(self):
        with pytest.raises(CDFGError, match="not an input"):
            unroll(gcd(), 2, {"gcd": "zz"})

    def test_duplicate_feedback_target(self):
        with pytest.raises(CDFGError, match="same input"):
            unroll(gcd(), 2, {"gcd": "a", "max": "a"})
