"""Differential tests: compiled engine vs interpreted simulator vs reference.

The compiled engine must be bit-for-bit equivalent to the legacy
:class:`RTLSimulator` — same outputs AND the same merged
:class:`ActivityCounter`, key presence included — with power management
both on and off, for every registered benchmark and for arbitrary
Hypothesis-generated circuits.  Outputs must also match the functional
reference model, closing the loop to the graph semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import TABLE2_BUDGETS, build
from repro.pipeline import FlowConfig, run_pair
from repro.sched.timing import critical_path_length
from repro.sim.engine import CompiledEngine
from repro.sim.reference import evaluate
from repro.sim.simulator import RTLSimulator
from repro.sim.vectors import random_vectors
from repro.sim.workloads import balanced_condition_vectors, gcd_trace_vectors
from tests.strategies import circuits


def assert_identical(design, vectors, power_management):
    """Engine == interpreter (outputs + full activity), and both == ref."""
    legacy = RTLSimulator(design, power_management=power_management)
    louts, lact = legacy.run_many(vectors)
    engine = CompiledEngine(design, power_management=power_management)
    eouts, eact = engine.run_many(vectors)
    assert eouts == louts
    assert eact.fu_input_toggles == lact.fu_input_toggles
    assert eact.fu_output_toggles == lact.fu_output_toggles
    assert eact.fu_activations == lact.fu_activations
    assert eact.fu_idles == lact.fu_idles
    assert eact.register_toggles == lact.register_toggles
    assert eact.controller_cycles == lact.controller_cycles
    assert eact.controller_literals == lact.controller_literals
    assert eact == lact
    graph = design.graph
    assert eouts == [evaluate(graph, v, width=design.width) for v in vectors]


class TestRegisteredCircuits:
    @pytest.mark.parametrize("name,steps", [
        (name, steps)
        for name, budgets in TABLE2_BUDGETS.items() for steps in budgets
    ])
    def test_all_budgets_identical(self, name, steps):
        graph = build(name)
        pair = run_pair(graph, FlowConfig(n_steps=steps))
        n = 8 if name == "cordic" else 48
        vectors = random_vectors(graph, n, seed=steps)
        for result in (pair.managed, pair.baseline):
            for pm in (True, False):
                assert_identical(result.design, vectors, pm)

    def test_gcd_workload_vectors(self, gcd_graph):
        """Identical on the trace and balanced workloads, not just uniform."""
        pair = run_pair(gcd_graph, FlowConfig(n_steps=7))
        for vectors in (gcd_trace_vectors(gcd_graph, n_runs=6),
                        balanced_condition_vectors(gcd_graph, count=40)):
            assert_identical(pair.managed.design, vectors, True)
            assert_identical(pair.managed.design, vectors, False)

    def test_multicycle_multiplier_identical(self):
        from repro.circuits import vender
        from repro.ir.ops import Op

        graph = vender()
        for node in graph.operations():
            if node.op is Op.MUL:
                node.latency = 2
        cp = critical_path_length(graph)
        pair = run_pair(graph, FlowConfig(n_steps=cp + 1))
        vectors = random_vectors(graph, 24)
        assert_identical(pair.managed.design, vectors, True)
        assert_identical(pair.baseline.design, vectors, False)


class TestRandomCircuits:
    @settings(max_examples=40, deadline=None)
    @given(circuits(max_ops=10), st.integers(min_value=0, max_value=2),
           st.integers(min_value=0, max_value=10_000))
    def test_engine_equals_legacy_and_reference(self, graph, slack, seed):
        cp = critical_path_length(graph)
        pair = run_pair(graph, FlowConfig(n_steps=cp + slack))
        vectors = random_vectors(graph, 6, seed=seed)
        for result in (pair.managed, pair.baseline):
            for pm in (True, False):
                assert_identical(result.design, vectors, pm)

    @settings(max_examples=20, deadline=None)
    @given(circuits(max_ops=8), st.integers(min_value=0, max_value=10_000))
    def test_batch_boundaries_do_not_matter(self, graph, seed):
        """Splitting a sequence across batches changes nothing."""
        from repro.sim.activity import ActivityCounter

        cp = critical_path_length(graph)
        design = run_pair(graph, FlowConfig(n_steps=cp + 1)).managed.design
        vectors = random_vectors(graph, 9, seed=seed)
        one = CompiledEngine(design).run_batch(vectors)
        split = CompiledEngine(design)
        parts = [split.run_batch(vectors[:4]), split.run_batch(vectors[4:])]
        assert sum((p.outputs for p in parts), []) == one.outputs
        merged = ActivityCounter(width=design.width)
        for p in parts:
            merged.merge(p.activity)
        assert merged == one.activity
