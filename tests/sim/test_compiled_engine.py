"""Unit tests for the compiled batch simulation engine."""

import pytest

from repro.ir.ops import ResourceClass
from repro.pipeline import FlowConfig, run_pair
from repro.sim.activity import ActivityCounter
from repro.sim.engine import CompiledEngine, compile_plan, generate_source
from repro.sim.simulator import RTLSimulator
from repro.sim.vectors import iter_random_vectors, random_vectors


@pytest.fixture
def dealer_design(dealer_graph):
    return run_pair(dealer_graph, FlowConfig(n_steps=6)).managed.design


class TestBatchExecution:
    def test_matches_legacy_run_many(self, dealer_graph, dealer_design):
        vectors = random_vectors(dealer_graph, 50)
        louts, lact = RTLSimulator(dealer_design).run_many(vectors)
        eouts, eact = CompiledEngine(dealer_design).run_many(vectors)
        assert eouts == louts
        assert eact == lact

    def test_split_batches_equal_one_batch(self, dealer_graph,
                                           dealer_design):
        """Persistent state makes batch boundaries invisible."""
        vectors = random_vectors(dealer_graph, 40)
        whole = CompiledEngine(dealer_design)
        one = whole.run_batch(vectors)

        split = CompiledEngine(dealer_design)
        first = split.run_batch(vectors[:13])
        second = split.run_batch(vectors[13:])
        assert first.outputs + second.outputs == one.outputs
        merged = ActivityCounter(width=dealer_design.width)
        merged.merge(first.activity)
        merged.merge(second.activity)
        assert merged == one.activity

    def test_accepts_streaming_input(self, dealer_graph, dealer_design):
        stream = iter_random_vectors(dealer_graph, 25)
        result = CompiledEngine(dealer_design).run_batch(stream)
        assert result.samples == 25
        expected = CompiledEngine(dealer_design).run_batch(
            random_vectors(dealer_graph, 25))
        assert result.outputs == expected.outputs
        assert result.activity == expected.activity

    def test_warm_state_sees_no_input_toggles(self, abs_diff_graph):
        """A warm datapath replaying the same vector switches nothing
        (each abs_diff op has its own unit, so latches hold steady)."""
        design = run_pair(abs_diff_graph,
                          FlowConfig(n_steps=3)).managed.design
        engine = CompiledEngine(design)
        vec = random_vectors(abs_diff_graph, 1)
        engine.run_batch(vec)
        repeat = engine.run_batch(vec)
        assert sum(repeat.activity.fu_input_toggles.values()) == 0

    def test_reset_returns_to_cold_state(self, dealer_graph, dealer_design):
        engine = CompiledEngine(dealer_design)
        vectors = random_vectors(dealer_graph, 10)
        cold = engine.run_batch(vectors)
        engine.reset()
        assert engine.samples == 0
        again = engine.run_batch(vectors)
        assert again.outputs == cold.outputs
        assert again.activity == cold.activity

    def test_missing_input_raises(self, dealer_design):
        engine = CompiledEngine(dealer_design)
        with pytest.raises(KeyError, match="missing input"):
            engine.run_batch([{"p": 1}])

    def test_samples_accumulate(self, dealer_graph, dealer_design):
        engine = CompiledEngine(dealer_design)
        engine.run_batch(random_vectors(dealer_graph, 7))
        engine.run_batch(random_vectors(dealer_graph, 5))
        assert engine.samples == 12

    def test_power_management_off_never_idles(self, dealer_graph,
                                              dealer_design):
        engine = CompiledEngine(dealer_design, power_management=False)
        result = engine.run_batch(random_vectors(dealer_graph, 20))
        assert result.activity.total_idles() == 0


class TestPlanCompilation:
    def test_plan_shape(self, dealer_graph, dealer_design):
        plan = compile_plan(dealer_design)
        assert plan.n_steps == 6
        assert [name for name, _ in plan.inputs] == \
            [n.name for n in dealer_graph.inputs()]
        assert [name for name, _ in plan.outputs] == \
            [n.name for n in dealer_graph.outputs()]
        assert len(plan.steps) == plan.n_steps
        starts = sum(len(s.starts) for s in plan.steps)
        ends = sum(len(s.ends) for s in plan.steps)
        assert starts == ends == len(dealer_graph.operations())
        assert ResourceClass.MUX in plan.classes

    def test_operand_sources_are_preresolved(self, dealer_design):
        plan = compile_plan(dealer_design)
        for step in plan.steps:
            for start in step.starts:
                for source in start.sources:
                    assert (source.const is None) != (source.register is None)

    def test_generated_source_is_python(self, dealer_design):
        plan = compile_plan(dealer_design)
        source = generate_source(plan, power_management=True)
        assert source.startswith("def _run(")
        compile(source, "<test>", "exec")  # must parse
        engine = CompiledEngine(dealer_design)
        assert engine.source == source

    def test_state_snapshot_named(self, dealer_graph, dealer_design):
        engine = CompiledEngine(dealer_design)
        state = engine.state()
        assert all(value == 0 for value in state.values())
        engine.run_batch(random_vectors(dealer_graph, 3))
        assert engine.state()["_cc"] == 3 * 6  # 3 samples x 6 steps
