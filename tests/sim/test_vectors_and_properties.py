"""Vector generation + the full-flow equivalence property test."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import synthesize
from repro.sched.timing import critical_path_length
from repro.sim.reference import evaluate
from repro.sim.simulator import RTLSimulator
from repro.sim.vectors import exhaustive_vectors, random_vectors
from tests.strategies import circuits


class TestVectors:
    def test_random_vectors_deterministic_by_seed(self, dealer_graph):
        a = random_vectors(dealer_graph, 10, seed=42)
        b = random_vectors(dealer_graph, 10, seed=42)
        c = random_vectors(dealer_graph, 10, seed=43)
        assert a == b
        assert a != c

    def test_random_vectors_in_range(self, dealer_graph):
        for vec in random_vectors(dealer_graph, 50, width=8):
            for value in vec.values():
                assert -128 <= value <= 127

    def test_exhaustive_covers_all(self, abs_diff_graph):
        vectors = exhaustive_vectors(abs_diff_graph, width=3)
        assert len(vectors) == 8 * 8
        assert len({tuple(sorted(v.items())) for v in vectors}) == 64


class TestFullFlowProperty:
    """The headline invariant: for ANY circuit and ANY slack, synthesis
    with power management produces hardware with identical behaviour."""

    @settings(max_examples=40, deadline=None)
    @given(circuits(max_ops=10), st.integers(min_value=0, max_value=2),
           st.integers(min_value=0, max_value=10_000))
    def test_pm_design_equals_reference(self, graph, slack, seed):
        cp = critical_path_length(graph)
        result = synthesize(graph, cp + slack)
        vectors = random_vectors(graph, 8, seed=seed)
        sim = RTLSimulator(result.design, power_management=True)
        outputs, _ = sim.run_many(vectors)
        assert outputs == [evaluate(graph, v) for v in vectors]

    @settings(max_examples=25, deadline=None)
    @given(circuits(max_ops=8), st.integers(min_value=0, max_value=2))
    def test_baseline_design_equals_reference(self, graph, slack):
        cp = critical_path_length(graph)
        from repro.core.pm_pass import PMOptions
        result = synthesize(graph, cp + slack, PMOptions(enabled=False))
        vectors = random_vectors(graph, 6, seed=0)
        sim = RTLSimulator(result.design, power_management=False)
        outputs, _ = sim.run_many(vectors)
        assert outputs == [evaluate(graph, v) for v in vectors]

    @settings(max_examples=25, deadline=None)
    @given(circuits(max_ops=10))
    def test_gated_activity_never_exceeds_baseline(self, graph):
        """Power management can only reduce the number of executions."""
        cp = critical_path_length(graph)
        result = synthesize(graph, cp + 2)
        vectors = random_vectors(graph, 5, seed=1)
        managed = RTLSimulator(result.design, power_management=True)
        _, act_managed = managed.run_many(vectors)
        baseline = RTLSimulator(result.design, power_management=False)
        _, act_baseline = baseline.run_many(vectors)
        assert act_managed.total_activations() <= \
            act_baseline.total_activations()
