"""The golden functional model."""

import pytest

from repro.circuits.cordic import ANGLE_TABLE
from repro.sim.reference import evaluate, evaluate_all


class TestKnownCircuits:
    @pytest.mark.parametrize("a,b", [(9, 3), (3, 9), (0, 0), (-5, 5),
                                     (127, -128)])
    def test_abs_diff(self, abs_diff_graph, a, b):
        out = evaluate(abs_diff_graph, {"a": a, "b": b})
        expected = a - b if a > b else b - a
        # 8-bit wraparound applies to the subtraction itself.
        from repro.ir.ops import OpSemantics
        sem = OpSemantics(8)
        expected = sem.wrap(expected)
        assert out["result"] == expected

    def test_gcd_step_semantics(self, gcd_graph):
        out = evaluate(gcd_graph, {"a": 12, "b": 8})
        assert out["max"] == 12
        assert out["next_b"] == 8
        assert out["done"] == 0
        assert out["gcd"] == 4  # 12 - 8

    def test_gcd_done_case(self, gcd_graph):
        out = evaluate(gcd_graph, {"a": 7, "b": 7})
        assert out["done"] == 1
        assert out["gcd"] == 7

    def test_gcd_converges_when_iterated(self, gcd_graph):
        """Feeding the outputs back eventually reaches gcd(a, b)."""
        import math
        a, b = 54, 24
        for _ in range(50):
            out = evaluate(gcd_graph, {"a": a, "b": b})
            if out["done"]:
                break
            a, b = out["gcd"], out["next_b"]
        assert out["gcd"] == math.gcd(54, 24)

    def test_dealer_bust_zeroes_payout(self, dealer_graph):
        out = evaluate(dealer_graph, {"p": 25, "d": 10, "c": 2})
        assert out["payout"] == 0

    def test_dealer_win_pays_margin(self, dealer_graph):
        out = evaluate(dealer_graph, {"p": 20, "d": 10, "c": 1})
        assert out["payout"] == 10  # p - d

    def test_vender_change_on_success(self, vender_graph):
        out = evaluate(vender_graph,
                       {"coins": 10, "credit": 5, "price": 3, "sel": 1})
        # funds=15 > 6, cost = price*2 = 6, change = 9
        assert out["amount"] == 9
        assert out["vend"] == 1

    def test_vender_short_on_failure(self, vender_graph):
        out = evaluate(vender_graph,
                       {"coins": 1, "credit": 2, "price": 3, "sel": 2})
        # funds=3 <= 6: amount = cost - funds = 9 - 3
        assert out["amount"] == 6
        assert out["vend"] == 0

    def test_cordic_drives_y_toward_zero(self, cordic_graph):
        out = evaluate(cordic_graph, {"x0": 40, "y0": 30, "z0": 0})
        assert abs(out["y_residual"]) <= 8  # residual shrinks

    def test_cordic_angle_sign_follows_y(self, cordic_graph):
        pos = evaluate(cordic_graph, {"x0": 50, "y0": 20, "z0": 0})
        neg = evaluate(cordic_graph, {"x0": 50, "y0": -20, "z0": 0})
        assert pos["angle"] > 0 > neg["angle"]


class TestEvaluateAll:
    def test_every_node_valued(self, dealer_graph):
        values = evaluate_all(dealer_graph, {"p": 5, "d": 3, "c": 1})
        assert set(values) == set(dealer_graph.node_ids)

    def test_missing_input_raises(self, abs_diff_graph):
        with pytest.raises(KeyError, match="missing input"):
            evaluate(abs_diff_graph, {"a": 1})

    def test_angle_table_is_monotone(self):
        assert all(a >= b for a, b in zip(ANGLE_TABLE, ANGLE_TABLE[1:]))
