"""Differential tests for modulo-scheduled (pipelined) designs.

A design synthesized with ``scheduler="pipeline"`` must compute the same
function as the reference model and simulate bit-identically across the
compiled, vectorized, and packed backends — in both pipelined-gating
modes.  Gating only ever skips work whose result the sample discards, so
neither per-sample guard copies nor dropped guards may change outputs.
"""

import pytest

from repro.circuits import build
from repro.core.pipelined_gating import PIPELINED_GATING_MODES
from repro.pipeline import FlowConfig, Pipeline
from repro.sched.timing import critical_path_length
from repro.sim.backend import create_engine
from repro.sim.engine import CompiledEngine
from repro.sim.reference import evaluate
from repro.sim.vectors import random_vectors

#: (spec, extra slack) — paper benchmarks, generated families, and the
#: CHStone kernels; slack gives the II search room below the budget.
PIPELINED_SPECS = [
    ("dealer", 2), ("gcd", 2), ("vender", 1),
    ("gen:branchy:7", 3), ("gen:deep:3", 2), ("gen:small:11", 1),
    ("chstone:adpcm", 3), ("chstone:jpeg", 2), ("chstone:mips:4", 2),
]


def synthesize(spec, slack, mode):
    graph = build(spec)
    n_steps = critical_path_length(graph) + slack
    result = Pipeline().run(graph, FlowConfig(
        n_steps=n_steps, scheduler="pipeline", pipelined_gating=mode,
        verify=True))
    return graph, result


def assert_matches_reference(graph, design, vectors):
    expected = [evaluate(graph, v, width=design.width) for v in vectors]
    compiled, _ = CompiledEngine(design).run_many(vectors)
    assert compiled == expected
    for backend in ("vectorized", "packed"):
        engine = create_engine(design, backend=backend)
        outputs, _ = engine.run_many(vectors)
        assert outputs == expected, backend


class TestPipelinedDesignsAreBitIdentical:
    @pytest.mark.parametrize("spec,slack", PIPELINED_SPECS,
                             ids=[s for s, _ in PIPELINED_SPECS])
    @pytest.mark.parametrize("mode", PIPELINED_GATING_MODES)
    def test_backends_match_reference(self, spec, slack, mode):
        graph, result = synthesize(spec, slack, mode)
        vectors = random_vectors(graph, 24, seed=sum(map(ord, spec)))
        assert_matches_reference(graph, result.design, vectors)

    def test_gating_modes_share_one_function(self):
        """per_sample and drop elaborate different gating but must agree
        on every output for every vector."""
        graph = build("vender")
        vectors = random_vectors(graph, 48, seed=7)
        outputs = []
        for mode in PIPELINED_GATING_MODES:
            result = Pipeline().run(graph, FlowConfig(
                n_steps=6, scheduler="pipeline", initiation_interval=2,
                pipelined_gating=mode))
            outs, _ = CompiledEngine(result.design).run_many(vectors)
            outputs.append(outs)
        assert outputs[0] == outputs[1]

    def test_pipelined_matches_unpipelined_function(self, gcd_graph):
        """The modulo schedule changes timing, never the function."""
        vectors = random_vectors(gcd_graph, 32, seed=3)
        flat = Pipeline().run(gcd_graph, FlowConfig(n_steps=7))
        piped = Pipeline().run(gcd_graph, FlowConfig(
            n_steps=7, scheduler="pipeline"))
        assert piped.schedule.initiation_interval <= 7
        a, _ = CompiledEngine(flat.design).run_many(vectors)
        b, _ = CompiledEngine(piped.design).run_many(vectors)
        assert a == b
