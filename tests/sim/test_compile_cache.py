"""Compile-once semantics: plans and runners are cached by fingerprint."""

import pytest

from repro.circuits import build
from repro.pipeline import FlowConfig, run_pair
from repro.sim.engine import (
    CompiledEngine,
    cached_plan,
    clear_compile_caches,
    design_fingerprint,
)
from repro.sim.vectorized import VectorizedEngine


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_compile_caches()
    yield
    clear_compile_caches()


def _design(steps=7):
    return run_pair(build("gcd"), FlowConfig(n_steps=steps)).managed.design


class TestFingerprint:
    def test_stable_across_equal_rebuilds(self):
        """Two independently synthesized but equal designs share one
        fingerprint — what lets explore() workers compile once."""
        assert design_fingerprint(_design()) == design_fingerprint(_design())

    def test_memoized_on_instance(self):
        design = _design()
        first = design_fingerprint(design)
        assert design.__dict__["_sim_fingerprint"] == first
        assert design_fingerprint(design) is first

    def test_differs_across_budgets_and_circuits(self):
        assert design_fingerprint(_design(7)) != design_fingerprint(_design(6))
        other = run_pair(build("dealer"),
                         FlowConfig(n_steps=6)).managed.design
        assert design_fingerprint(_design()) != design_fingerprint(other)

    def test_differs_between_managed_and_baseline(self):
        pair = run_pair(build("gcd"), FlowConfig(n_steps=7))
        assert design_fingerprint(pair.managed.design) \
            != design_fingerprint(pair.baseline.design)


class TestCompileOnce:
    def test_plan_shared_across_engines(self):
        design = _design()
        assert cached_plan(design) is cached_plan(design)
        a = CompiledEngine(design)
        b = CompiledEngine(design)
        assert a.plan is b.plan
        assert a._run is b._run  # the exec-compiled runner is reused

    def test_plan_shared_across_equal_designs(self):
        a = CompiledEngine(_design())
        b = CompiledEngine(_design())
        assert a.plan is b.plan

    def test_backends_share_one_plan(self):
        design = _design()
        assert CompiledEngine(design).plan is VectorizedEngine(design).plan

    def test_pm_modes_cached_separately(self):
        design = _design()
        on = CompiledEngine(design, power_management=True)
        off = CompiledEngine(design, power_management=False)
        assert on.source != off.source
        assert on.plan is off.plan

    def test_cached_engines_stay_independent(self):
        """Shared runners, private state: one engine's batches must not
        leak into another's counters."""
        from repro.sim.vectors import random_vectors

        design = _design()
        a = CompiledEngine(design)
        b = CompiledEngine(design)
        vectors = random_vectors(design.graph, 8)
        a.run_batch(vectors)
        assert a.samples == 8
        assert b.samples == 0
        fresh = CompiledEngine(design).run_batch(vectors)
        assert fresh.activity == CompiledEngine(design).run_batch(vectors).activity
