"""Differential tests: vectorized backend vs compiled engine vs interpreter.

The vectorized NumPy backend must be bit-for-bit equivalent to the
compiled engine (which is itself pinned against the interpreter and the
functional reference): same outputs AND the same merged
:class:`ActivityCounter`, key presence included — with power management
both on and off, for every registered benchmark, for multicycle variants,
for arbitrary Hypothesis-generated circuits, and across every batch
boundary (odd sizes, size-1 blocks, empty blocks).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import TABLE2_BUDGETS, build
from repro.pipeline import FlowConfig, run_pair
from repro.sched.timing import critical_path_length
from repro.sim.activity import ActivityCounter
from repro.sim.backend import create_engine
from repro.sim.engine import CompiledEngine
from repro.sim.simulator import RTLSimulator
from repro.sim.vectorized import VectorizedEngine
from repro.sim.vectors import (
    array_random_vectors,
    random_vectors,
    vectors_to_array,
)
from repro.sim.workloads import (
    array_balanced_condition_vectors,
    array_gcd_trace_vectors,
    balanced_condition_vectors,
    gcd_trace_vectors,
)
from tests.strategies import circuits


def assert_identical(design, vectors, power_management):
    """Vectorized == compiled == interpreter: outputs + full activity."""
    legacy = RTLSimulator(design, power_management=power_management)
    louts, lact = legacy.run_many(vectors)
    compiled = CompiledEngine(design, power_management=power_management)
    couts, cact = compiled.run_many(vectors)
    vector = VectorizedEngine(design, power_management=power_management)
    vouts, vact = vector.run_many(vectors)
    assert vouts == couts == louts
    assert vact.fu_input_toggles == cact.fu_input_toggles
    assert vact.fu_output_toggles == cact.fu_output_toggles
    assert vact.fu_activations == cact.fu_activations
    assert vact.fu_idles == cact.fu_idles
    assert vact.register_toggles == cact.register_toggles
    assert vact.controller_cycles == cact.controller_cycles
    assert vact.controller_literals == cact.controller_literals
    assert vact == cact == lact


class TestRegisteredCircuits:
    @pytest.mark.parametrize("name,steps", [
        (name, steps)
        for name, budgets in TABLE2_BUDGETS.items() for steps in budgets
    ])
    def test_all_budgets_identical(self, name, steps):
        graph = build(name)
        pair = run_pair(graph, FlowConfig(n_steps=steps))
        n = 8 if name == "cordic" else 48
        vectors = random_vectors(graph, n, seed=steps)
        for result in (pair.managed, pair.baseline):
            for pm in (True, False):
                assert_identical(result.design, vectors, pm)

    def test_gcd_workload_vectors(self, gcd_graph):
        pair = run_pair(gcd_graph, FlowConfig(n_steps=7))
        for vectors in (gcd_trace_vectors(gcd_graph, n_runs=6),
                        balanced_condition_vectors(gcd_graph, count=40)):
            assert_identical(pair.managed.design, vectors, True)
            assert_identical(pair.managed.design, vectors, False)

    def test_multicycle_multiplier_identical(self):
        from repro.circuits import vender
        from repro.ir.ops import Op

        graph = vender()
        for node in graph.operations():
            if node.op is Op.MUL:
                node.latency = 2
        cp = critical_path_length(graph)
        pair = run_pair(graph, FlowConfig(n_steps=cp + 1))
        vectors = random_vectors(graph, 24)
        assert_identical(pair.managed.design, vectors, True)
        assert_identical(pair.baseline.design, vectors, False)


class TestBatchShapes:
    @pytest.mark.parametrize("sizes", [
        (1,), (2,), (1, 1, 1), (4095,), (1, 4095), (7, 64, 1, 28),
    ])
    def test_odd_batch_sizes(self, gcd_graph, sizes):
        """Splitting across odd block boundaries changes nothing."""
        design = run_pair(gcd_graph, FlowConfig(n_steps=7)).managed.design
        total = sum(sizes)
        vectors = random_vectors(gcd_graph, total)
        one = CompiledEngine(design).run_batch(vectors)
        split = VectorizedEngine(design)
        merged = ActivityCounter(width=design.width)
        outputs = []
        offset = 0
        for size in sizes:
            part = split.run_batch(vectors[offset:offset + size])
            outputs += part.outputs
            merged.merge(part.activity)
            offset += size
        assert outputs == one.outputs
        assert merged == one.activity

    def test_empty_batch_is_identity(self, gcd_graph):
        design = run_pair(gcd_graph, FlowConfig(n_steps=7)).managed.design
        engine = VectorizedEngine(design)
        before = engine.state()
        result = engine.run_batch([])
        assert result.outputs == []
        assert result.activity == ActivityCounter(width=design.width)
        assert engine.state() == before
        assert engine.samples == 0

    def test_run_array_matches_run_batch(self, gcd_graph):
        design = run_pair(gcd_graph, FlowConfig(n_steps=7)).managed.design
        vectors = random_vectors(gcd_graph, 33)
        a = VectorizedEngine(design)
        b = VectorizedEngine(design)
        matrix = vectors_to_array(vectors, a.input_names)
        array_result = a.run_array(matrix)
        batch_result = b.run_batch(vectors)
        assert array_result.activity == batch_result.activity
        assert array_result.samples == batch_result.samples == 33
        for name, column in array_result.outputs.items():
            assert column.tolist() == [o[name] for o in batch_result.outputs]

    def test_missing_input_raises_like_compiled(self, gcd_graph):
        design = run_pair(gcd_graph, FlowConfig(n_steps=7)).managed.design
        engine = VectorizedEngine(design)
        with pytest.raises(KeyError, match="missing input"):
            engine.run_batch([{"a": 1}])

    def test_bad_matrix_shape_raises(self, gcd_graph):
        import numpy as np

        design = run_pair(gcd_graph, FlowConfig(n_steps=7)).managed.design
        engine = VectorizedEngine(design)
        with pytest.raises(ValueError, match="input matrix"):
            engine.run_array(np.zeros((4, 7), dtype=np.int64))


class TestArrayBuilders:
    """array_* builders draw the identical sequence as the list forms."""

    def test_array_random_vectors(self, gcd_graph):
        matrix = array_random_vectors(gcd_graph, 50, seed=7)
        rows = [dict(zip(("a", "b"), row)) for row in matrix.tolist()]
        assert rows == random_vectors(gcd_graph, 50, seed=7)

    def test_array_workloads(self, gcd_graph):
        matrix = array_gcd_trace_vectors(gcd_graph, n_runs=5, seed=3)
        rows = [dict(zip(("a", "b"), row)) for row in matrix.tolist()]
        assert rows == gcd_trace_vectors(gcd_graph, n_runs=5, seed=3)
        matrix = array_balanced_condition_vectors(gcd_graph, count=40)
        rows = [dict(zip(("a", "b"), row)) for row in matrix.tolist()]
        assert rows == balanced_condition_vectors(gcd_graph, count=40)


class TestBackendSelection:
    def test_create_engine_backends(self, gcd_graph):
        from repro.sim.packed import PackedEngine

        design = run_pair(gcd_graph, FlowConfig(n_steps=7)).managed.design
        assert isinstance(create_engine(design, backend="compiled"),
                          CompiledEngine)
        assert isinstance(create_engine(design, backend="vectorized"),
                          VectorizedEngine)
        assert isinstance(create_engine(design, backend="packed"),
                          PackedEngine)
        assert isinstance(create_engine(design, backend="auto"),
                          VectorizedEngine)

    def test_create_engine_records_choice(self, gcd_graph):
        design = run_pair(gcd_graph, FlowConfig(n_steps=7)).managed.design
        for requested, resolved in [("compiled", "compiled"),
                                    ("vectorized", "vectorized"),
                                    ("packed", "packed"),
                                    ("auto", "vectorized")]:
            engine = create_engine(design, backend=requested)
            assert engine.chosen_backend == resolved, requested

    def test_unknown_backend_rejected(self, gcd_graph):
        design = run_pair(gcd_graph, FlowConfig(n_steps=7)).managed.design
        with pytest.raises(ValueError, match="unknown simulation backend"):
            create_engine(design, backend="fortran")


class TestGeneratedCircuitFuzz:
    """Differential fuzz over the seeded ``repro.gen`` workload families.

    220 deterministic seeds (no Hypothesis shrinking budget — every seed
    runs every time) are synthesized baseline + managed and executed on
    all three backends; outputs and the full merged activity must be
    bit-identical, and outputs must also match the functional reference
    model evaluated on the input CDFG.  Since the hybrid scalar-slot
    plan, the vectorized backend is total: every seed must vectorize
    (possibly via the hybrid micro-loop) with **zero** fallbacks — the
    PR-4 fallback budget is gone.
    """

    #: (preset, seed range) — 220 seeds total, ≥200 per the acceptance
    #: criteria, spread over op-mix/branchiness/shape families.
    PLANS = [
        ("small", range(0, 100)),
        ("branchy", range(0, 60)),
        ("medium", range(0, 40)),
        ("deep", range(0, 20)),
    ]

    @pytest.mark.parametrize("preset,seeds", [
        (preset, chunk)
        for preset, seed_range in PLANS
        for chunk in (tuple(seed_range)[i:i + 20]
                      for i in range(0, len(seed_range), 20))
    ], ids=lambda value: value if isinstance(value, str)
        else f"{value[0]}-{value[-1]}")
    def test_three_backends_bit_identical(self, preset, seeds):
        from repro.sim.reference import evaluate

        for seed in seeds:
            spec = f"gen:{preset}:{seed}"
            graph = build(spec)
            cp = critical_path_length(graph)
            pair = run_pair(graph, FlowConfig(n_steps=cp + seed % 3))
            vectors = random_vectors(graph, 4, seed=seed)
            expected = [evaluate(graph, v, width=pair.managed.design.width)
                        for v in vectors]
            for result in (pair.managed, pair.baseline):
                for pm in (True, False):
                    # No try/except: VectorizationError here is a bug.
                    assert_identical(result.design, vectors, pm)
                # auto never falls back to the compiled engine anymore.
                engine = create_engine(result.design, backend="auto")
                assert engine.chosen_backend == "vectorized", spec
                # Functionally correct, not just mutually consistent.
                outputs, _ = CompiledEngine(result.design).run_many(vectors)
                assert outputs == expected, spec


class TestGatedRecurrenceRegression:
    """Pinned 14-node circuit that used to raise ``VectorizationError``.

    Hypothesis (seed 0) found it through
    ``test_batch_boundaries_do_not_matter``: power management leaves a
    register that is written under a guard and read stale within the same
    step, an irreducible cross-vector recurrence.  The circuit is frozen
    as :func:`repro.circuits.extra.gated_recurrence` so the regression
    stays deterministic even if the strategy or its shrinker changes.
    """

    @pytest.fixture(scope="class")
    def recurrent_design(self):
        from repro.circuits.extra import gated_recurrence

        graph = gated_recurrence()
        cp = critical_path_length(graph)
        design = run_pair(graph, FlowConfig(n_steps=cp + 1)).managed.design
        return graph, design

    def test_plan_is_hybrid(self, recurrent_design):
        _, design = recurrent_design
        engine = VectorizedEngine(design)
        assert engine.hybrid
        assert engine.scalar_slots  # at least one scalar micro-loop slot

    def test_bit_identical_to_compiled(self, recurrent_design):
        graph, design = recurrent_design
        vectors = random_vectors(graph, 48, seed=0)
        assert_identical(design, vectors, True)
        assert_identical(design, vectors, False)

    def test_batch_boundaries_do_not_matter(self, recurrent_design):
        """The exact property the Hypothesis failure falsified."""
        graph, design = recurrent_design
        vectors = random_vectors(graph, 9, seed=0)
        one = VectorizedEngine(design).run_batch(vectors)
        split = VectorizedEngine(design)
        parts = [split.run_batch(vectors[:4]), split.run_batch(vectors[4:])]
        assert sum((p.outputs for p in parts), []) == one.outputs
        merged = ActivityCounter(width=design.width)
        for p in parts:
            merged.merge(p.activity)
        assert merged == one.activity

    def test_auto_stays_vectorized(self, recurrent_design):
        _, design = recurrent_design
        engine = create_engine(design, backend="auto")
        assert isinstance(engine, VectorizedEngine)
        assert engine.chosen_backend == "vectorized"

    def test_packed_falls_back_to_hybrid(self, recurrent_design):
        """packed cannot run recurrences; it degrades to the hybrid
        vectorized engine (never to an error)."""
        graph, design = recurrent_design
        engine = create_engine(design, backend="packed")
        assert isinstance(engine, VectorizedEngine)
        assert engine.chosen_backend == "vectorized"
        vectors = random_vectors(graph, 16, seed=1)
        reference = CompiledEngine(design).run_many(vectors)
        assert engine.run_many(vectors) == reference


class TestRandomCircuits:
    @settings(max_examples=40, deadline=None)
    @given(circuits(max_ops=10), st.integers(min_value=0, max_value=2),
           st.integers(min_value=0, max_value=10_000))
    def test_vectorized_equals_compiled_and_legacy(self, graph, slack, seed):
        cp = critical_path_length(graph)
        pair = run_pair(graph, FlowConfig(n_steps=cp + slack))
        vectors = random_vectors(graph, 6, seed=seed)
        for result in (pair.managed, pair.baseline):
            for pm in (True, False):
                # Cross-vector recurrences run through the hybrid
                # scalar-slot plan; nothing may raise or fall back.
                assert_identical(result.design, vectors, pm)

    @settings(max_examples=20, deadline=None)
    @given(circuits(max_ops=8), st.integers(min_value=0, max_value=10_000))
    def test_batch_boundaries_do_not_matter(self, graph, seed):
        cp = critical_path_length(graph)
        design = run_pair(graph, FlowConfig(n_steps=cp + 1)).managed.design
        vectors = random_vectors(graph, 9, seed=seed)
        one = VectorizedEngine(design).run_batch(vectors)
        split = VectorizedEngine(design)
        parts = [split.run_batch(vectors[:4]), split.run_batch(vectors[4:])]
        assert sum((p.outputs for p in parts), []) == one.outputs
        merged = ActivityCounter(width=design.width)
        for p in parts:
            merged.merge(p.activity)
        assert merged == one.activity
