"""RTL simulator: functional equivalence and shut-down accounting."""

import pytest

from repro.flow import synthesize, synthesize_pair
from repro.sim.reference import evaluate
from repro.sim.simulator import RTLSimulator
from repro.sim.vectors import random_vectors
from repro.sched.timing import critical_path_length


class TestFunctionalEquivalence:
    """Power management must never change circuit outputs."""

    @pytest.mark.parametrize("name,steps", [
        ("dealer", 4), ("dealer", 6),
        ("gcd", 5), ("gcd", 7),
        ("vender", 5), ("vender", 6),
    ])
    def test_benchmarks_match_reference(self, name, steps):
        from repro.circuits import build
        graph = build(name)
        pair = synthesize_pair(graph, steps)
        vectors = random_vectors(graph, 60, seed=steps)
        expected = [evaluate(graph, v) for v in vectors]
        for result, pm in ((pair.managed, True), (pair.baseline, False)):
            sim = RTLSimulator(result.design, power_management=pm)
            outputs, _ = sim.run_many(vectors)
            assert outputs == expected

    def test_managed_design_with_pm_disabled_still_correct(self,
                                                           dealer_graph):
        """Running the PM datapath with gating off is the same circuit."""
        result = synthesize(dealer_graph, 6)
        vectors = random_vectors(dealer_graph, 30)
        sim = RTLSimulator(result.design, power_management=False)
        outputs, _ = sim.run_many(vectors)
        assert outputs == [evaluate(dealer_graph, v) for v in vectors]

    def test_cordic_equivalence(self, cordic_graph):
        result = synthesize(cordic_graph, 48)
        vectors = random_vectors(cordic_graph, 8)
        sim = RTLSimulator(result.design)
        outputs, _ = sim.run_many(vectors)
        assert outputs == [evaluate(cordic_graph, v) for v in vectors]


class TestShutdownAccounting:
    def test_abs_diff_idles_one_sub_per_sample(self, abs_diff_graph):
        result = synthesize(abs_diff_graph, 3)
        sim = RTLSimulator(result.design)
        vectors = random_vectors(abs_diff_graph, 40)
        _, activity = sim.run_many(vectors)
        assert activity.total_idles() == 40  # exactly one sub skipped each

    def test_baseline_never_idles(self, dealer_graph):
        pair = synthesize_pair(dealer_graph, 6)
        sim = RTLSimulator(pair.baseline.design, power_management=False)
        _, activity = sim.run_many(random_vectors(dealer_graph, 20))
        assert activity.total_idles() == 0

    def test_idle_plus_active_equals_scheduled(self, vender_graph):
        result = synthesize(vender_graph, 6)
        sim = RTLSimulator(result.design)
        n = 25
        _, activity = sim.run_many(random_vectors(vender_graph, n))
        total_ops = len(vender_graph.operations())
        assert activity.total_idles() + activity.total_activations() \
            == n * total_ops

    def test_idle_unit_has_no_input_toggles(self, abs_diff_graph):
        """The core power-management claim: disabled latches don't switch.

        With equal inputs the selected subtraction is a-b = 0 twice in a
        row; run the same vector twice — the second pass must add zero
        input toggles for the sub class beyond the first."""
        result = synthesize(abs_diff_graph, 3)
        sim = RTLSimulator(result.design)
        vec = {"a": 9, "b": 3}
        sim.run(vec)
        second = sim.run(vec)
        from repro.ir.ops import ResourceClass
        assert second.activity.fu_input_toggles.get(ResourceClass.SUB, 0) == 0

    def test_controller_cycles_counted(self, dealer_graph):
        result = synthesize(dealer_graph, 6)
        sim = RTLSimulator(result.design)
        sample = sim.run({"p": 5, "d": 3, "c": 2})
        assert sample.activity.controller_cycles == 6


class TestStateAndErrors:
    def test_missing_input_raises(self, abs_diff_graph):
        sim = RTLSimulator(synthesize(abs_diff_graph, 3).design)
        with pytest.raises(KeyError, match="missing input"):
            sim.run({"a": 1})

    def test_repeated_runs_are_deterministic(self, abs_diff_graph):
        """Same vector twice: same outputs, and the warm datapath sees no
        execution-unit input switching at all."""
        design = synthesize(abs_diff_graph, 3).design
        sim = RTLSimulator(design)
        first = sim.run({"a": 100, "b": 1})
        repeat = sim.run({"a": 100, "b": 1})
        assert repeat.outputs == first.outputs
        assert sum(repeat.activity.fu_input_toggles.values()) == 0

    def test_equivalence_at_critical_path(self, small_circuit):
        cp = critical_path_length(small_circuit)
        result = synthesize(small_circuit, cp)
        vectors = random_vectors(small_circuit, 20, seed=5)
        sim = RTLSimulator(result.design)
        outputs, _ = sim.run_many(vectors)
        assert outputs == [evaluate(small_circuit, v) for v in vectors]
