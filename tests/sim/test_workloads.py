"""Edge cases of the workload-shaped vector generators."""

from itertools import islice

import pytest

from repro.sim.reference import evaluate
from repro.sim.vectors import iter_random_vectors, random_vectors
from repro.sim.workloads import (
    balanced_condition_vectors,
    gcd_trace_vectors,
    iter_balanced_condition_vectors,
    iter_gcd_trace_vectors,
)


class TestGcdTrace:
    def test_runs_terminate_on_done_branch(self, gcd_graph):
        """Each run ends the first time the done flag rises (or at the
        iteration cap), so exactly one done-pair appears per finished run."""
        n_runs = 8
        vectors = gcd_trace_vectors(gcd_graph, n_runs=n_runs,
                                    max_iterations=512)
        # A generous cap means every run terminates naturally.
        done_flags = [evaluate(gcd_graph, v)["done"] for v in vectors]
        assert sum(1 for flag in done_flags if flag) == n_runs
        # done is terminal within a run: the vector after a done-pair is
        # the next run's fresh start, never a continuation.
        assert done_flags[-1] == 1

    def test_trace_pairs_follow_circuit_feedback(self, gcd_graph):
        vectors = gcd_trace_vectors(gcd_graph, n_runs=3, max_iterations=512)
        for current, following in zip(vectors, vectors[1:]):
            out = evaluate(gcd_graph, current)
            if not out["done"]:
                assert following == {"a": out["gcd"], "b": out["next_b"]}

    def test_max_iterations_caps_run_length(self, gcd_graph):
        n_runs = 5
        capped = gcd_trace_vectors(gcd_graph, n_runs=n_runs,
                                   max_iterations=2)
        assert len(capped) <= n_runs * 2
        single = gcd_trace_vectors(gcd_graph, n_runs=n_runs,
                                   max_iterations=1)
        assert len(single) == n_runs

    def test_all_operands_positive(self, gcd_graph):
        for vector in gcd_trace_vectors(gcd_graph, n_runs=10):
            assert vector["a"] > 0 and vector["b"] > 0

    def test_iter_matches_list(self, gcd_graph):
        streamed = list(iter_gcd_trace_vectors(gcd_graph, n_runs=4))
        assert streamed == gcd_trace_vectors(gcd_graph, n_runs=4)

    def test_endless_stream(self, gcd_graph):
        stream = iter_gcd_trace_vectors(gcd_graph, n_runs=None)
        chunk = list(islice(stream, 300))
        assert len(chunk) == 300


class TestBalancedCondition:
    def test_equal_fraction_zero_never_forces_equality(self, gcd_graph):
        vectors = balanced_condition_vectors(gcd_graph, count=200,
                                             equal_fraction=0.0)
        assert len(vectors) == 200
        # Forcing never happens; coincidental equality is rare but legal.
        assert sum(1 for v in vectors if v["a"] == v["b"]) < 30

    def test_equal_fraction_one_forces_all_equal(self, gcd_graph):
        vectors = balanced_condition_vectors(gcd_graph, count=150,
                                             equal_fraction=1.0)
        assert len(vectors) == 150
        assert all(len(set(v.values())) == 1 for v in vectors)

    @pytest.mark.parametrize("fraction", [-0.1, 1.0001, 2.0, -5.0])
    def test_out_of_bounds_fraction_raises(self, gcd_graph, fraction):
        with pytest.raises(ValueError, match="equal_fraction"):
            balanced_condition_vectors(gcd_graph, count=10,
                                       equal_fraction=fraction)

    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_iter_raises_eagerly(self, gcd_graph, fraction):
        """The streaming variant validates at call time, not first draw."""
        with pytest.raises(ValueError, match="equal_fraction"):
            iter_balanced_condition_vectors(gcd_graph,
                                            equal_fraction=fraction)

    def test_boundary_fractions_accepted(self, gcd_graph):
        for fraction in (0.0, 1.0):
            assert len(balanced_condition_vectors(
                gcd_graph, count=5, equal_fraction=fraction)) == 5

    def test_iter_matches_list(self, gcd_graph):
        streamed = list(iter_balanced_condition_vectors(gcd_graph, count=64))
        assert streamed == balanced_condition_vectors(gcd_graph, count=64)

    def test_endless_stream(self, gcd_graph):
        stream = iter_balanced_condition_vectors(gcd_graph)
        assert len(list(islice(stream, 500))) == 500


class TestRandomVectorStream:
    def test_iter_matches_list(self, dealer_graph):
        streamed = list(islice(iter_random_vectors(dealer_graph), 32))
        assert streamed == random_vectors(dealer_graph, 32)

    def test_count_limits_stream(self, dealer_graph):
        assert len(list(iter_random_vectors(dealer_graph, 7))) == 7
