"""Bit-packed backend: kernel unit tests + engine differential tests.

The packed backend stores each value column as ``width`` uint64 bit
slices, 64 Monte-Carlo vectors per machine word, and evaluates logic
slicewise.  Two layers are tested here:

* the word-parallel kernels (``_padd``, ``_plt``, ``_pffill``, ...)
  against plain Python integer arithmetic on random columns, and
* :class:`PackedEngine` against :class:`CompiledEngine` — outputs and
  the full merged :class:`ActivityCounter`, power management on and
  off, across batch splits — on the benchmark suite and on the
  pure-logic circuit the backend is optimized for.

Recurrent (hybrid) plans and widths above 64 must refuse with
``PackingError``, and ``create_engine`` must degrade to the hybrid
vectorized engine rather than surface the error.
"""

import numpy as np
import pytest

from repro.circuits import build
from repro.circuits.extra import gated_recurrence, logic_mixer
from repro.pipeline import FlowConfig, run_pair
from repro.sched.timing import critical_path_length
from repro.sim.activity import ActivityCounter
from repro.sim.backend import create_engine
from repro.sim.engine import CompiledEngine
from repro.sim.packed import (
    PackedEngine,
    PackingError,
    _pack,
    _padd,
    _pconst,
    _peq,
    _pffill,
    _plast,
    _plt,
    _pmul,
    _pshift1,
    _pshl,
    _pshr,
    _psub,
    _punpack,
    _valid_mask,
    generate_packed_source,
)
from repro.sim.vectorized import VectorizedEngine
from repro.sim.vectors import random_vectors


WIDTH = 8
MASK = (1 << WIDTH) - 1
SIGN = 1 << (WIDTH - 1)


def wrap(x):
    """Two's-complement wrap to ``WIDTH`` bits, like every backend."""
    return ((int(x) & MASK) ^ SIGN) - SIGN


def columns(seed, n=100):
    """A deliberately awkward length (100 spans a word boundary)."""
    rng = np.random.default_rng(seed)
    return rng.integers(-(1 << 10), 1 << 10, size=n, dtype=np.int64)


class TestKernels:
    @pytest.mark.parametrize("n", [1, 63, 64, 65, 100, 128])
    def test_pack_roundtrip(self, n):
        col = columns(n, n)
        packed = _pack(col, WIDTH)
        assert packed.shape == (WIDTH, (n + 63) // 64)
        assert _punpack(packed, n).tolist() == [wrap(v) for v in col]

    def test_valid_mask(self):
        assert _valid_mask(64).tolist() == [(1 << 64) - 1]
        assert _valid_mask(65).tolist() == [(1 << 64) - 1, 1]
        assert int(_valid_mask(100)[1]) == (1 << 36) - 1

    @pytest.mark.parametrize("kernel,op", [
        (_padd, lambda a, b: a + b),
        (_psub, lambda a, b: a - b),
        (_pmul, lambda a, b: a * b),
    ])
    def test_arithmetic(self, kernel, op):
        a, b = columns(1), columns(2)
        got = _punpack(kernel(_pack(a, WIDTH), _pack(b, WIDTH)), 100)
        assert got.tolist() == [wrap(op(wrap(x), wrap(y)))
                                for x, y in zip(a, b)]

    def test_signed_less_than(self):
        a, b = columns(3), columns(4)
        mask = _plt(_pack(a, WIDTH), _pack(b, WIDTH))
        got = [(int(mask[j // 64]) >> (j % 64)) & 1 for j in range(100)]
        assert got == [int(wrap(x) < wrap(y)) for x, y in zip(a, b)]

    def test_equality(self):
        a = columns(5)
        b = a.copy()
        b[::3] = columns(6)[::3]  # force both outcomes
        mask = _peq(_pack(a, WIDTH), _pack(b, WIDTH))
        got = [(int(mask[j // 64]) >> (j % 64)) & 1 for j in range(100)]
        assert got == [int(wrap(x) == wrap(y)) for x, y in zip(a, b)]

    @pytest.mark.parametrize("k", [0, 1, 3, WIDTH - 1])
    def test_shifts(self, k):
        a = columns(7)
        wrapped = [wrap(v) for v in a]
        left = _punpack(_pshl(_pack(a, WIDTH), k), 100)
        assert left.tolist() == [wrap(v << k) for v in wrapped]
        right = _punpack(_pshr(_pack(a, WIDTH), k), 100)
        assert right.tolist() == [v >> k for v in wrapped]

    def test_const_and_last(self):
        col = _pconst(-3, WIDTH, 2)
        assert _punpack(col, 100).tolist() == [-3] * 100
        data = columns(8)
        assert _plast(_pack(data, WIDTH), 100) == wrap(data[99])

    @pytest.mark.parametrize("n,carry", [(100, 0), (100, -5), (64, 7),
                                         (65, -1), (130, 3)])
    def test_masked_forward_fill(self, n, carry):
        """_pffill == sequential carry propagation, including across the
        word boundary and back to the scalar seed."""
        rng = np.random.default_rng(n * 1000 + (carry & MASK))
        value = rng.integers(-128, 128, size=n, dtype=np.int64)
        taken = rng.random(n) < 0.4
        mask = np.zeros((n + 63) // 64, dtype=np.uint64)
        for j in np.nonzero(taken)[0]:
            mask[j // 64] |= np.uint64(1) << np.uint64(j % 64)
        got = _punpack(
            _pffill(_pack(value, WIDTH), mask, carry & MASK), n)
        expected, cur = [], wrap(carry)
        for j in range(n):
            if taken[j]:
                cur = wrap(value[j])
            expected.append(cur)
        assert got.tolist() == expected

    @pytest.mark.parametrize("n,carry", [(100, 9), (64, -2), (65, 0)])
    def test_shift_by_one(self, n, carry):
        value = columns(9, n)
        got = _punpack(_pshift1(_pack(value, WIDTH), carry & MASK), n)
        expected = [wrap(carry)] + [wrap(v) for v in value[:-1]]
        assert got.tolist() == expected


def assert_packed_identical(design, vectors, power_management):
    compiled = CompiledEngine(design, power_management=power_management)
    couts, cact = compiled.run_many(vectors)
    packed = PackedEngine(design, power_management=power_management)
    pouts, pact = packed.run_many(vectors)
    assert pouts == couts
    assert pact == cact


class TestEngineDifferential:
    @pytest.mark.parametrize("name", ["dealer", "gcd", "vender", "cordic"])
    def test_suite_circuits(self, name):
        graph = build(name)
        steps = critical_path_length(graph) + 1
        pair = run_pair(graph, FlowConfig(n_steps=steps))
        n = 8 if name == "cordic" else 70  # 70 crosses a word boundary
        vectors = random_vectors(graph, n, seed=steps)
        for result in (pair.managed, pair.baseline):
            for pm in (True, False):
                assert_packed_identical(result.design, vectors, pm)

    def test_pure_logic_circuit(self):
        graph = logic_mixer()
        cp = critical_path_length(graph)
        pair = run_pair(graph, FlowConfig(n_steps=cp + 1))
        vectors = random_vectors(graph, 200, seed=0)
        for pm in (True, False):
            assert_packed_identical(pair.managed.design, vectors, pm)

    def test_batch_boundaries_do_not_matter(self):
        graph = build("gcd")
        design = run_pair(graph, FlowConfig(n_steps=7)).managed.design
        vectors = random_vectors(graph, 150, seed=3)
        one = PackedEngine(design).run_batch(vectors)
        split = PackedEngine(design)
        # 70 is not a multiple of 64: state crosses mid-word boundaries.
        parts = [split.run_batch(vectors[:70]),
                 split.run_batch(vectors[70:])]
        assert sum((p.outputs for p in parts), []) == one.outputs
        merged = ActivityCounter(width=design.width)
        for p in parts:
            merged.merge(p.activity)
        assert merged == one.activity

    def test_tiled_run_array_identical(self):
        # Huge batches run in _tile_rows chunks with state threaded
        # across tiles; shrink the tile so 150 vectors exercise several
        # ragged tiles without a 64k-vector test batch.
        import numpy as np

        from repro.sim.vectors import vectors_to_array

        graph = build("gcd")
        design = run_pair(graph, FlowConfig(n_steps=7)).managed.design
        whole = PackedEngine(design)
        tiled = PackedEngine(design)
        tiled._tile_rows = 50  # not a multiple of 64: worst case
        matrix = vectors_to_array(random_vectors(graph, 150, seed=3),
                                  whole.input_names)
        ref = whole.run_array(matrix)
        got = tiled.run_array(matrix)
        assert got.activity == ref.activity
        assert got.outputs.keys() == ref.outputs.keys()
        for name, col in ref.outputs.items():
            assert np.array_equal(got.outputs[name], col)

    def test_source_is_packed(self):
        from repro.sim.engine import cached_plan

        graph = build("dealer")
        steps = critical_path_length(graph) + 1
        design = run_pair(graph, FlowConfig(n_steps=steps)).managed.design
        source = generate_packed_source(cached_plan(design),
                                        power_management=True)
        assert "_pack(" in source and "_valid_mask" in source


class TestRefusalAndFallback:
    def test_recurrent_design_raises(self):
        graph = gated_recurrence()
        cp = critical_path_length(graph)
        design = run_pair(graph, FlowConfig(n_steps=cp + 1)).managed.design
        with pytest.raises(PackingError, match="recurren"):
            PackedEngine(design)

    def test_wide_design_raises(self):
        graph = build("dealer")
        steps = critical_path_length(graph) + 1
        design = run_pair(
            graph, FlowConfig(n_steps=steps, width=65)).managed.design
        with pytest.raises(PackingError, match="width"):
            PackedEngine(design)

    def test_create_engine_degrades_to_hybrid(self):
        graph = gated_recurrence()
        cp = critical_path_length(graph)
        design = run_pair(graph, FlowConfig(n_steps=cp + 1)).managed.design
        engine = create_engine(design, backend="packed")
        assert isinstance(engine, VectorizedEngine)
        assert not isinstance(engine, PackedEngine)
        assert engine.chosen_backend == "vectorized"
        assert engine.hybrid

    def test_packed_engine_chosen_backend(self):
        graph = build("gcd")
        design = run_pair(graph, FlowConfig(n_steps=7)).managed.design
        engine = create_engine(design, backend="packed")
        assert isinstance(engine, PackedEngine)
        assert engine.chosen_backend == "packed"
