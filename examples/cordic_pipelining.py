"""CORDIC: slack, pipelining and power management at scale (paper §IV-B).

The 16-iteration CORDIC is the paper's largest benchmark (152 operations).
This example shows the central trade-off: at the critical path there is no
slack and nothing can be shut down; every extra control step lets another
iteration's comparison run ahead of its add/sub pairs, until at the
paper's 48-step budget all 47 multiplexors are managed.  Pipelining buys
those extra steps without losing throughput.

Run:  python examples/cordic_pipelining.py
"""

from repro import cordic, critical_path_length, static_power
from repro.core import apply_power_management
from repro.sched import PipelineSpec, pipelined_minimize, slack_gained
from repro.sim import evaluate


def slack_staircase(graph) -> None:
    cp = critical_path_length(graph)
    print(f"critical path: {cp} control steps "
          "(paper reports 48 for its unpublished dataflow)")
    print("\nsteps  managed-muxes  datapath-power-reduction")
    for steps in (cp, cp + 4, cp + 8, cp + 12, 48, 52):
        pm = apply_power_management(graph, steps)
        report = static_power(pm)
        print(f"  {steps:3d}      {pm.managed_count:2d}/47          "
              f"{report.reduction_pct:5.2f}%")


def pipeline_for_free_slack(graph) -> None:
    cp = critical_path_length(graph)
    print("\n=== pipelining: extra steps at the same throughput ===")
    for stages in (1, 2):
        spec = PipelineSpec(n_steps=cp * stages, n_stages=stages)
        pm = apply_power_management(graph, spec.n_steps)
        sched = pipelined_minimize(pm.graph, spec)
        report = static_power(pm)
        print(f"  {stages}-stage: {spec.n_steps} steps, II="
              f"{spec.initiation_interval}, slack +"
              f"{slack_gained(graph, spec)}, "
              f"{pm.managed_count} managed muxes, "
              f"{report.reduction_pct:.1f}% saved, "
              f"FU cost {sched.allocation.cost()}")


def functional_check(graph) -> None:
    print("\n=== vectoring-mode sanity ===")
    for x0, y0 in ((40, 30), (50, -20), (60, 0)):
        out = evaluate(graph, {"x0": x0, "y0": y0, "z0": 0})
        print(f"  ({x0:3d},{y0:4d}) -> magnitude~{out['magnitude']:4d} "
              f"angle {out['angle']:4d} (y residual {out['y_residual']})")


def main() -> None:
    graph = cordic()
    print(f"cordic: {graph.op_counts()} "
          f"({len(graph.operations())} operations)\n")
    slack_staircase(graph)
    pipeline_for_free_slack(graph)
    functional_check(graph)


if __name__ == "__main__":
    main()
