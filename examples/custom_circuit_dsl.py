"""Bring your own circuit: the Silage-like DSL end to end.

Writes a small conditional-heavy design (a saturating motor controller) in
the description language, compiles it to a CDFG, synthesizes it with and
without power management, simulates both, and emits the VHDL the paper's
flow would hand to Synopsys.

Run:  python examples/custom_circuit_dsl.py
"""

from repro import (
    FlowConfig,
    RTLSimulator,
    evaluate,
    generate_vhdl,
    random_vectors,
    run_pair,
    static_power,
)
from repro.lang import compile_circuit
from repro.sched import critical_path_length

MOTOR_CONTROLLER = """
# Saturating PI-ish motor controller step.
circuit motor {
    input setpoint, measured, gain;

    error = setpoint - measured;
    c_pos = error > 0;
    mag = c_pos ? error : 0 - error;     # |error|
    c_big = mag > 20;                    # out of band?
    boost = mag * gain;                  # only needed when out of band
    trim = mag + gain;                   # only needed in band
    effort = c_big ? boost : trim;
    output drive = c_pos ? effort : 0 - effort;
    output alarm = c_big ? 1 : 0;
}
"""


def main() -> None:
    graph = compile_circuit(MOTOR_CONTROLLER)
    cp = critical_path_length(graph)
    print(f"compiled {graph.name!r}: {graph.op_counts()}, "
          f"critical path {cp} steps")

    steps = cp + 2  # give the PM pass some slack
    pair = run_pair(graph, FlowConfig(n_steps=steps))
    report = static_power(pair.managed.pm)
    print(f"\n@{steps} steps: {pair.managed.pm.managed_count} managed "
          f"muxes, {report.reduction_pct:.1f}% expected datapath savings, "
          f"area x{pair.area_increase:.2f}")
    print("\nmanaged schedule:")
    print(pair.managed.schedule.table())

    # The multiplier only runs when the error is out of band.
    vectors = random_vectors(graph, 200)
    sim = RTLSimulator(pair.managed.design)
    outputs, activity = sim.run_many(vectors)
    assert outputs == [evaluate(graph, v) for v in vectors]
    from repro.ir import ResourceClass
    mults = activity.fu_activations.get(ResourceClass.MUL, 0)
    print(f"\nmultiplier ran {mults}/{len(vectors)} samples "
          f"(skipped {len(vectors) - mults} by shut-down); "
          "outputs verified against the reference model")

    vhdl = generate_vhdl(pair.managed.design)
    path = "motor_pm.vhd"
    with open(path, "w") as handle:
        handle.write(vhdl)
    guarded = vhdl.count("power management:")
    print(f"wrote {path}: {len(vhdl.splitlines())} lines, "
          f"{guarded} guarded load enables")


if __name__ == "__main__":
    main()
