"""Quickstart: synthesize a circuit with power-management-aware scheduling.

Builds the paper's |a-b| example, runs the full pipeline at a 3-step
budget, and shows what power management bought: the stage wiring, the
schedule, the gated operations, the expected power savings, and a
functional check against the reference model.

Run:  python examples/quickstart.py
"""

from repro import (
    ArtifactCache,
    FlowConfig,
    Pipeline,
    RTLSimulator,
    abs_diff,
    describe_decisions,
    evaluate,
    random_vectors,
    static_power,
)


def main() -> None:
    graph = abs_diff()
    print(f"circuit: {graph.name}  ops: {graph.op_counts()}")

    # The flow is a pipeline of named stages writing into a shared
    # artifact store: validate -> analyze -> power_manage -> schedule
    # -> allocate -> elaborate -> verify -> report.
    pipeline = Pipeline(cache=ArtifactCache())
    print("\n--- pipeline wiring ---")
    print(pipeline.describe())

    config = FlowConfig(n_steps=3, verify=True)
    result = pipeline.run(graph, config)

    print("\n--- scheduling decision log ---")
    print(describe_decisions(result.pm))

    print("\n--- final schedule ---")
    print(result.schedule.table())

    print("\n--- design summary ---")
    print(result.design.summary())

    report = static_power(result.pm)
    print(f"\nexpected datapath power reduction: "
          f"{report.reduction_pct:.1f}% "
          f"({report.baseline:.1f} -> {report.managed:.1f} weighted units)")

    # Power management must not change behaviour: simulate the generated
    # RTL against the golden dataflow model.
    vectors = random_vectors(graph, 100)
    simulator = RTLSimulator(result.design, power_management=True)
    outputs, activity = simulator.run_many(vectors)
    assert outputs == [evaluate(graph, v) for v in vectors]
    print(f"\nsimulated 100 samples: outputs match the reference model; "
          f"{activity.total_idles()} execution-unit activations were "
          f"skipped by shut-down")

    # The baseline design at the same throughput, for comparison.  The
    # caching pipeline reuses the analyze artifacts it already computed.
    baseline = pipeline.run(graph, config.baseline())
    print(f"baseline design:  {baseline.design.summary()}")
    print(f"(artifact cache after both runs: "
          f"{pipeline.cache.stats.hits} hits, "
          f"{pipeline.cache.stats.misses} misses)")


if __name__ == "__main__":
    main()
