"""Design-space exploration on the gcd benchmark.

Sweeps the throughput budget, compares MUX-ordering strategies against the
exhaustive optimum (paper §IV-A), and shows how workload-profiled select
probabilities change the power prediction — uniform random operands almost
never make gcd's done-branch true, real GCD iteration traces hit it a few
percent of the time, and the paper's uniform-probability assumption sits
in between.

Run:  python examples/gcd_design_space.py
"""

from repro import SelectModel, explore, gcd, static_power
from repro.core import (
    apply_power_management,
    exhaustive_search,
    gated_weight,
    strategy_search,
)
from repro.power import profile_selects
from repro.sim import gcd_trace_vectors, random_vectors


def sweep_budgets(graph) -> None:
    print("=== throughput sweep (steps -> PM muxes, power, area) ===")
    space = explore([graph], budgets=range(5, 10))
    for point in space.points:
        print(f"  {point.n_steps} steps: {point.managed_muxes} managed "
              f"muxes, {point.power_reduction_pct:5.2f}% datapath power "
              f"saved, area {point.area}")
    print(f"  (stage-cache hits across the sweep: {space.cache_hits})")


def compare_orderings(graph) -> None:
    print("\n=== MUX ordering strategies at 7 steps (paper SIV-A) ===")
    outcome = strategy_search(graph, 7)
    for label, (weight, muxes) in outcome.scores.items():
        print(f"  {label:13s}: gated weight {weight:5.2f}, {muxes} muxes")
    optimum = exhaustive_search(graph, 7, limit=6)
    print(f"  exhaustive   : gated weight "
          f"{gated_weight(optimum.best):5.2f} "
          f"(order {optimum.best_label})")


def profile_workloads(graph) -> None:
    print("\n=== select-probability models at 7 steps ===")
    pm = apply_power_management(graph, 7)
    models = {
        "paper (uniform 0.5)": SelectModel(),
        "profiled: random operands":
            profile_selects(graph, random_vectors(graph, 300)),
        "profiled: GCD iteration traces":
            profile_selects(graph, gcd_trace_vectors(graph, n_runs=40)),
    }
    for label, model in models.items():
        report = static_power(pm, selects=model)
        print(f"  {label:32s}: {report.reduction_pct:5.2f}% predicted")


def main() -> None:
    graph = gcd()
    print(f"gcd circuit: {graph.op_counts()}\n")
    sweep_budgets(graph)
    compare_orderings(graph)
    profile_workloads(graph)


if __name__ == "__main__":
    main()
