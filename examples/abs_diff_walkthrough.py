"""The paper's §II walkthrough: |a-b| under 2 vs 3 control steps.

Reproduces the story of Figures 1 and 2 end to end:

* 2 steps — the schedule is unique, two subtractors, no power management
  (Fig. 1);
* 3 steps, traditional — one subtractor, both subtractions always execute
  (Fig. 2a);
* 3 steps, power-managed — the comparison is scheduled first and exactly
  one subtraction's operand latches load each sample (Fig. 2b).

Also exports the CDFG (with the dashed control edges of Fig. 2b) as DOT.

Run:  python examples/abs_diff_walkthrough.py
"""

from repro import ArtifactCache, FlowConfig, Pipeline, RTLSimulator, abs_diff
from repro.ir import to_dot
from repro.power import measure_power
from repro.sim import random_vectors


def main() -> None:
    graph = abs_diff()
    pipeline = Pipeline(cache=ArtifactCache())

    print("=== Fig. 1: two control steps ===")
    two = pipeline.run(graph, FlowConfig(n_steps=2))
    print(two.schedule.table())
    print(f"power-managed muxes: {two.pm.managed_count} "
          "(no slack -> traditional result)")
    print(f"subtractors needed: {two.allocation.as_dict().get('-')}")

    print("\n=== Fig. 2(a): three steps, traditional ===")
    trad = pipeline.run(graph, FlowConfig(n_steps=3).baseline())
    print(trad.schedule.table())
    print(f"subtractors needed: {trad.allocation.as_dict().get('-')}")

    print("\n=== Fig. 2(b): three steps, power managed ===")
    managed = pipeline.run(graph, FlowConfig(n_steps=3))
    print(managed.schedule.table())
    for nid, guards in managed.pm.gating.items():
        node = managed.pm.graph.node(nid)
        mux, side = guards[0]
        print(f"  {node.label()} loads only when "
              f"{managed.pm.graph.node(mux).label()} selects side {side}")

    # Measure both three-step designs on the same vectors.
    vectors = random_vectors(graph, 256)
    p_trad = measure_power(trad.design, vectors=vectors,
                           power_management=False)
    p_managed = measure_power(managed.design, vectors=vectors,
                              power_management=True)
    saved = 100.0 * (p_trad.total - p_managed.total) / p_trad.total
    print(f"\nsimulated energy/sample: traditional {p_trad.total:.2f}, "
          f"power-managed {p_managed.total:.2f}  (saves {saved:.1f}%)")

    # Idle accounting: one subtraction skipped per sample.
    simulator = RTLSimulator(managed.design)
    _, activity = simulator.run_many(vectors)
    print(f"skipped subtractions: {activity.total_idles()} "
          f"of {len(vectors) * 2} scheduled")

    dot = to_dot(managed.pm.graph,
                 {n: managed.schedule.step_of(n)
                  for n in managed.pm.graph.node_ids})
    path = "abs_diff_fig2b.dot"
    with open(path, "w") as handle:
        handle.write(dot)
    print(f"\nwrote {path} (dashed red edges = the paper's control edges)")


if __name__ == "__main__":
    main()
